type t = { root : string }

let default_dir = "_dlcache"

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let objects_dir t = Filename.concat t.root "objects"
let manifest_path t = Filename.concat t.root "manifest"

let open_ root =
  mkdir_p (Filename.concat root "objects");
  if not (Sys.is_directory root) then
    raise (Sys_error (root ^ ": not a directory"));
  { root }

let root t = t.root

let shard key = if String.length key >= 2 then String.sub key 0 2 else "xx"

let object_path t key =
  Filename.concat (Filename.concat (objects_dir t) (shard key)) (key ^ ".art")

let key_of_path path = Filename.chop_suffix (Filename.basename path) ".art"

let mem t key = Sys.file_exists (object_path t key)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load t key =
  let path = object_path t key in
  match read_file path with
  | s -> Some (Bytes.unsafe_of_string s)
  | exception Sys_error _ -> None
  | exception End_of_file -> None

let append_manifest t ~key ~kind ~version ~bytes =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (manifest_path t)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Printf.fprintf oc "%s %s %d %d\n" key kind version bytes)

(* The pid alone is not enough to make tmp names unique: server worker
   threads share a process and may put the same key concurrently (e.g. a
   peer push racing a local compute). *)
let put_seq = Atomic.make 0

let put t ~key ~kind ~version data =
  let path = object_path t key in
  mkdir_p (Filename.dirname path);
  let tmp =
    Filename.concat (Filename.dirname path)
      (Printf.sprintf ".tmp.%d.%d.%s" (Unix.getpid ())
         (Atomic.fetch_and_add put_seq 1)
         (Filename.basename path))
  in
  let oc = open_out_bin tmp in
  (try
     output_bytes oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  append_manifest t ~key ~kind ~version ~bytes:(Bytes.length data)

let remove t key =
  let path = object_path t key in
  try Sys.remove path with Sys_error _ -> ()

let fold t ~init ~f =
  let dir = objects_dir t in
  let acc = ref init in
  let shards = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare shards;
  Array.iter
    (fun s ->
      let sdir = Filename.concat dir s in
      if Sys.is_directory sdir then begin
        let files = Sys.readdir sdir in
        Array.sort compare files;
        Array.iter
          (fun fname ->
            if Filename.check_suffix fname ".art" then begin
              let path = Filename.concat sdir fname in
              acc := f !acc ~key:(key_of_path path) ~path
            end)
          files
      end)
    shards;
  !acc

let clear t =
  fold t ~init:() ~f:(fun () ~key:_ ~path ->
      try Sys.remove path with Sys_error _ -> ());
  try Sys.remove (manifest_path t) with Sys_error _ -> ()

(* -------------------------------------------------------------- stats *)

type stats = {
  objects : int;
  total_bytes : int;
  by_kind : (string * int * int) list;
}

let stats t =
  let tbl = Hashtbl.create 8 in
  let objects, total_bytes =
    fold t ~init:(0, 0) ~f:(fun (n, bytes) ~key:_ ~path ->
        match read_file path with
        | exception Sys_error _ -> (n, bytes)
        | s ->
            let kind =
              match
                Codec.inspect ~check_crc:false (Bytes.unsafe_of_string s)
              with
              | Ok (kind, _) -> kind
              | Error _ -> "?"
            in
            let c, b = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl kind) in
            Hashtbl.replace tbl kind (c + 1, b + String.length s);
            (n + 1, bytes + String.length s))
  in
  let by_kind =
    Hashtbl.fold (fun kind (c, b) acc -> (kind, c, b) :: acc) tbl []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  { objects; total_bytes; by_kind }

(* ------------------------------------------------------------- verify *)

type verify_report = { checked : int; corrupt : (string * string) list }

let verify t =
  let checked, corrupt =
    fold t ~init:(0, []) ~f:(fun (n, bad) ~key ~path ->
        match read_file path with
        | exception Sys_error m -> (n + 1, (key, "unreadable: " ^ m) :: bad)
        | s -> (
            match Codec.inspect ~check_crc:true (Bytes.unsafe_of_string s) with
            | Ok _ -> (n + 1, bad)
            | Error e -> (n + 1, (key, Codec.error_to_string e) :: bad)))
  in
  { checked; corrupt = List.rev corrupt }

(* ----------------------------------------------------------------- gc *)

type gc_report = {
  kept : int;
  removed_corrupt : int;
  removed_stale : int;
  removed_evicted : int;
  removed_bytes : int;
}

(* Manifest insertion order, oldest first, deduplicated on the *last*
   occurrence (a re-put refreshes an artifact's position). *)
let manifest_order t =
  match open_in (manifest_path t) with
  | exception Sys_error _ -> []
  | ic ->
      let order = ref [] in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              match String.split_on_char ' ' line with
              | key :: _ -> order := key :: !order
              | [] -> ()
            done
          with End_of_file -> ());
      let seen = Hashtbl.create 64 in
      let newest_first =
        List.filter
          (fun key ->
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          !order
      in
      List.rev newest_first

let gc ?(current = Artifact.current_versions) ?max_bytes t =
  let removed_corrupt = ref 0
  and removed_stale = ref 0
  and removed_evicted = ref 0
  and removed_bytes = ref 0 in
  let live = Hashtbl.create 64 in
  (* Pass 1: drop corrupt and version-stale artifacts. *)
  fold t ~init:() ~f:(fun () ~key ~path ->
      let size = try (Unix.stat path).st_size with Unix.Unix_error _ -> 0 in
      let drop counter =
        incr counter;
        removed_bytes := !removed_bytes + size;
        try Sys.remove path with Sys_error _ -> ()
      in
      match read_file path with
      | exception Sys_error _ -> drop removed_corrupt
      | s -> (
          match Codec.inspect ~check_crc:true (Bytes.unsafe_of_string s) with
          | Error _ -> drop removed_corrupt
          | Ok (kind, version) -> (
              match List.assoc_opt kind current with
              | Some v when v <> version -> drop removed_stale
              | _ -> Hashtbl.replace live key (kind, version, size))));
  (* Pass 2: size-cap eviction, oldest manifest entries first.  Keys put
     before the manifest existed (or with a lost manifest) have no
     recorded age and are evicted first. *)
  (match max_bytes with
  | None -> ()
  | Some cap ->
      let total =
        Hashtbl.fold (fun _ (_, _, size) acc -> acc + size) live 0
      in
      let ordered =
        let in_manifest =
          List.filter (fun k -> Hashtbl.mem live k) (manifest_order t)
        in
        let recorded = Hashtbl.create 64 in
        List.iter (fun k -> Hashtbl.replace recorded k ()) in_manifest;
        let unrecorded =
          Hashtbl.fold
            (fun k _ acc -> if Hashtbl.mem recorded k then acc else k :: acc)
            live []
          |> List.sort compare
        in
        unrecorded @ in_manifest
      in
      let excess = ref (total - cap) in
      List.iter
        (fun key ->
          if !excess > 0 then begin
            let _, _, size = Hashtbl.find live key in
            (try Sys.remove (object_path t key) with Sys_error _ -> ());
            Hashtbl.remove live key;
            incr removed_evicted;
            removed_bytes := !removed_bytes + size;
            excess := !excess - size
          end)
        ordered);
  (* Rewrite the manifest to the surviving set, preserving age order. *)
  let survivors_in_order =
    let in_manifest =
      List.filter (fun k -> Hashtbl.mem live k) (manifest_order t)
    in
    let recorded = Hashtbl.create 64 in
    List.iter (fun k -> Hashtbl.replace recorded k ()) in_manifest;
    let unrecorded =
      Hashtbl.fold
        (fun k _ acc -> if Hashtbl.mem recorded k then acc else k :: acc)
        live []
      |> List.sort compare
    in
    unrecorded @ in_manifest
  in
  let tmp = manifest_path t ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun key ->
          let kind, version, size = Hashtbl.find live key in
          Printf.fprintf oc "%s %s %d %d\n" key kind version size)
        survivors_in_order);
  Sys.rename tmp (manifest_path t);
  {
    kept = Hashtbl.length live;
    removed_corrupt = !removed_corrupt;
    removed_stale = !removed_stale;
    removed_evicted = !removed_evicted;
    removed_bytes = !removed_bytes;
  }
