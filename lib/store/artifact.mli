(** Typed binary codecs for every pipeline artifact the stage graph
    caches: circuits, pattern sets, stuck-at universes, per-fault
    detection results, IFA extraction output and experiment summaries.

    All codecs are exact round-trips: floats are stored bit-for-bit and
    circuits are rebuilt through {!Dl_netlist.Circuit.Builder} in original
    node-id order, so the decoded circuit is structurally equal to the
    encoded one (same ids, levels and topological order — the derived
    fields are deterministic functions of the declarations). *)

open Dl_netlist

val circuit : Circuit.t Codec.t

val patterns : bool array array Codec.t
(** Test-vector sequences, bit-packed 8 vectors' bits per byte. *)

val stuck_faults : Dl_fault.Stuck_at.t array Codec.t

(** ATPG stage output: the ordered vector sequence plus the flow
    statistics and the redundancy verdicts downstream stages filter on. *)
type atpg = {
  vectors : bool array array;
  stats : Dl_atpg.Atpg.stats;
  coverage : float;
  untestable_faults : Dl_fault.Stuck_at.t array;
  aborted_faults : Dl_fault.Stuck_at.t array;
}

val atpg : atpg Codec.t

(** Gate-level fault-simulation output, minus the fault list (which is the
    separately-cached universe artifact the detections are parallel to).
    Version 2 appends the engine counters ({!Dl_fault.Fault_sim.Stats.t}),
    so [--sim-stats] reporting works from a warm cache too. *)
type detections = {
  first_detection : int option array;
  vectors_applied : int;
  gate_evaluations : int;
  sim_stats : Dl_fault.Fault_sim.Stats.t;
}

val detections : detections Codec.t

(** IFA extraction output minus the layout geometry: the weighted
    realistic fault list and the per-class accounting.  The layout itself
    is re-synthesized deterministically from the mapped circuit on a warm
    run (cheap), so it is not persisted. *)
type ifa = {
  faults : Dl_switch.Realistic.t array;
  gross_weight : float;
  summaries : Dl_extract.Ifa.class_summary list;
}

val ifa : ifa Codec.t

(** Switch-level (swift) simulation output, parallel to the IFA fault
    list. *)
type swift = {
  detection : Dl_switch.Swift.detection array;
  vectors_applied : int;
  region_solves : int;
}

val swift : swift Codec.t

(** Experiment summary: the rendered one-paragraph summary plus the
    fitted eq. 9 parameters and the yield-scaling factor. *)
type summary = {
  text : string;
  fit_r : float;
  fit_theta_max : float;
  fit_rmse : float;
  fit_rmse_log10 : bool;  (** [true]: rmse in log10 units (see
                              {!Dl_core.Projection.rmse_scale}). *)
  scale_factor : float;
}

val summary : summary Codec.t

(** One coverage point of a Monte-Carlo DL(T) band
    (mirrors {!Dl_core.Wafer_mc.band}). *)
type wafer_mc_band = {
  k : int;
  coverage : float;
  dl_point : float;
  dl_q05 : float;
  dl_q50 : float;
  dl_q95 : float;
  passed : int;
  defective_passed : int;
  wafer_dls : float array;
}

(** Monte-Carlo wafer/lot simulation output (the [wafer-mc] stage;
    mirrors {!Dl_core.Wafer_mc.t}). *)
type wafer_mc = {
  mc_dies : int;
  mc_dies_per_wafer : int;
  mc_wafers_per_lot : int;
  mc_wafers : int;
  mc_lots : int;
  mc_alpha_wafer : float;
  mc_alpha_lot : float;
  mc_defective : int;
  mc_bands : wafer_mc_band array;
}

val wafer_mc : wafer_mc Codec.t

(** Bootstrap refit output (the [bootstrap-fit] stage): the full-data
    point estimates plus the per-replicate parameter samples — the
    percentile intervals are recomputed from the samples on decode
    ({!Dl_core.Bootstrap.of_samples}), so the two can never disagree. *)
type bootstrap_fit = {
  fit_points : int;
  point_r : float;
  point_theta_max : float;
  point_rmse : float;
  point_rmse_log10 : bool;
  alpha_point : float;
  r_samples : float array;
  theta_max_samples : float array;
  alpha_samples : float array;
}

val bootstrap_fit : bootstrap_fit Codec.t

(** Multi-detect simulation output (the [ndet-sim] stage), minus the fault
    list — like {!detections}, the counts and detection indices are
    parallel to the separately-cached universe artifact.  [nd_detections]
    is row-major [faults * drop_after] with [-1] for "never reached the
    k-th detection" (mirrors {!Dl_fault.Fault_sim.ndet}). *)
type ndet_profile = {
  nd_drop_after : int;
  nd_counts : int array;
  nd_detections : int array;
  nd_vectors_applied : int;
  nd_gate_evaluations : int;
  nd_sim_stats : Dl_fault.Fault_sim.Stats.t;
}

val ndet_profile : ndet_profile Codec.t

(** n-detection test-generation output (the [ndet-atpg] stage; mirrors
    {!Dl_ndet.Atpg_n.result}). *)
type ndet_atpg = {
  na_vectors : bool array array;
  na_counts : int array;
  na_stats : Dl_ndet.Atpg_n.stats;
  na_untestable_faults : Dl_fault.Stuck_at.t array;
  na_aborted_faults : Dl_fault.Stuck_at.t array;
}

val ndet_atpg : ndet_atpg Codec.t

val current_versions : (string * int) list
(** [(kind, version)] for every codec above — what {!Store.gc} uses to
    drop artifacts whose format byte is stale. *)

val defect_stats_fingerprint : Dl_extract.Defect_stats.t -> string
(** Canonical digest of the non-zero defect classes (name, density, x0):
    the config fingerprint of the layout-IFA stage. *)
