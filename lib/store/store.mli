(** Content-addressed on-disk artifact store.

    Layout under the root directory:

    {v root/objects/<k2>/<key>.art   one envelope-framed artifact each
       root/manifest                 one "key kind version bytes" line per
                                     put, in insertion order (GC eviction
                                     order); rebuilt by gc v}

    Keys are 32-hex-char digests derived by {!Stage} from (stage name,
    input artifact keys, stage config, codec kind/version).  Writes are
    atomic (temp file in the same directory, then [Sys.rename]), so a
    crash mid-write never leaves a half artifact under a live key; loads
    never trust on-disk bytes — the caller decodes through {!Codec},
    where a bad checksum is a cache miss, not a crash. *)

type t

val default_dir : string
(** ["_dlcache"] — the conventional cache root (gitignored). *)

val open_ : string -> t
(** Create the directory skeleton if needed.
    @raise Sys_error when the root cannot be created. *)

val root : t -> string
val object_path : t -> string -> string
(** On-disk path of a key (whether or not it exists). *)

val mem : t -> string -> bool

val load : t -> string -> bytes option
(** Raw artifact bytes; [None] when absent or unreadable.  Envelope
    validation is the caller's job (via {!Codec.of_bytes}). *)

val put : t -> key:string -> kind:string -> version:int -> bytes -> unit
(** Atomic write + manifest append.  Overwrites an existing object (used
    to repair a corrupt artifact in place). *)

val remove : t -> string -> unit
(** Delete one object (no-op when absent). *)

val clear : t -> unit
(** Delete every object and the manifest (the root survives). *)

type stats = {
  objects : int;
  total_bytes : int;
  by_kind : (string * int * int) list;
      (** [(kind, count, bytes)], descending by bytes; kind ["?"] collects
          unreadable headers. *)
}

val stats : t -> stats
(** Header-only scan of the objects directory (no checksum pass). *)

type verify_report = {
  checked : int;
  corrupt : (string * string) list;  (** [(key, reason)]. *)
}

val verify : t -> verify_report
(** Full checksum pass over every object. *)

type gc_report = {
  kept : int;
  removed_corrupt : int;
  removed_stale : int;
  removed_evicted : int;
  removed_bytes : int;
}

val gc : ?current:(string * int) list -> ?max_bytes:int -> t -> gc_report
(** Remove corrupt artifacts, artifacts whose format version is older
    than [current] for their kind (default {!Artifact.current_versions}),
    and — when [max_bytes] is given — evict oldest-first (manifest
    insertion order) until the store fits.  Rewrites the manifest. *)

val fold : t -> init:'a -> f:('a -> key:string -> path:string -> 'a) -> 'a
(** Iterate every stored object (any order). *)
