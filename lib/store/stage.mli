(** Incremental stage graph: each pipeline stage declares its name, its
    input artifact keys and a config fingerprint; the stage key is the
    digest of all of those plus the artifact codec's kind/version.  A warm
    run therefore re-executes a stage only when something upstream of it
    actually changed — a different seed invalidates ATPG and everything
    downstream, while a different target yield or sample-point count
    invalidates nothing in the simulation pipeline.

    With no store attached the graph is a pure bookkeeper: stages always
    compute, but keys and per-stage reports are still produced (that is
    what key-invalidation tests assert on). *)

type outcome =
  | Hit       (** Loaded from the local store. *)
  | Fetched   (** Fetched from a peer store (and persisted locally). *)
  | Miss      (** Computed (and stored, when a store is attached). *)
  | Uncached  (** Computed; no store attached. *)

type report = {
  stage : string;
  key : string;
  outcome : outcome;
  seconds : float;  (** Wall-clock: load+decode on a hit, compute+encode+
                        store on a miss. *)
}

type t

(** Peer tier for cluster fetch-through.  [fetch key] asks peer stores
    for the codec-enveloped artifact bytes before a local compute;
    [publish key data] pushes a freshly computed artifact toward the
    key's home node.  Both are best-effort: any exception they raise is
    swallowed and the stage proceeds as a plain miss/store. *)
type remote = {
  fetch : string -> bytes option;
  publish : string -> bytes -> unit;
}

val create : ?store:Store.t -> ?remote:remote -> unit -> t
val store : t -> Store.t option

val key :
  stage:string ->
  codec:'a Codec.t ->
  config:(string * string) list ->
  inputs:string list ->
  string
(** The stage key: digest of (stage name, codec kind, codec version,
    config pairs in given order, input keys in given order). *)

val run :
  t ->
  stage:string ->
  codec:'a Codec.t ->
  ?config:(string * string) list ->
  inputs:string list ->
  (unit -> 'a) ->
  'a * string
(** [(value, key)].  On a decode failure (bad checksum, stale version,
    malformed payload) the on-disk artifact is removed and the stage
    recomputes — corruption degrades to a miss, never an error.  When a
    [remote] tier is attached, a local miss first tries [remote.fetch]
    (a validated answer is persisted locally and reported {!Fetched});
    a computed artifact is offered to [remote.publish] best-effort. *)

val reports : t -> report list
(** In execution order. *)

val hits : t -> int
(** [Hit] + [Fetched] outcomes — answers that skipped the compute. *)

val misses : t -> int
(** [Miss] + [Uncached] outcomes. *)

val pp_reports : Format.formatter -> report list -> unit
(** Small per-stage table (stage, outcome, seconds, key prefix). *)
