(** A cluster worker: a {!Dl_serve.Server} whose stage graph is wired to
    the peer store tier.

    On a local stage miss the worker asks the key's home node (then the
    next distinct ring member) via [store-get] before computing; a
    computed artifact is pushed to its home node via [store-put].  Both
    directions are best-effort with short timeouts and a per-peer failure
    cooldown, so a dead peer degrades the cluster to local computing
    instead of hanging it. *)

type t

val start :
  ?workers:int -> ?queue_capacity:int -> ?cache_capacity:int ->
  ?domains_per_worker:int -> ?max_frame:int -> ?read_deadline_s:float ->
  ?on_job_start:(string -> unit) -> ?cache_dir:string ->
  listen:Dl_serve.Transport.endpoint -> unit -> t
(** Start serving.  Without [cache_dir] there is no local store, so the
    peer tier still answers [store-get] misses but nothing persists.
    Binding [Tcp (host, 0)] picks an ephemeral port — read it back with
    {!bound}. *)

val bound : t -> Dl_serve.Transport.endpoint

val set_peers : t -> Dl_serve.Transport.endpoint list -> unit
(** Install the fleet membership (usually every worker {e including} this
    one; self is recognized by endpoint equality and skipped).  Callable
    any time — late binding exists because ephemeral ports are only known
    after every worker has started. *)

val peers : t -> string list
(** Current ring membership as endpoint strings (sorted). *)

val server : t -> Dl_serve.Server.t

val stop : t -> unit
(** Graceful drain ({!Dl_serve.Server.stop}). *)
