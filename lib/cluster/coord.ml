module Protocol = Dl_serve.Protocol
module Client = Dl_serve.Client
module Transport = Dl_serve.Transport
module Metrics = Dl_serve.Metrics
module Experiment = Dl_core.Experiment
module Benchmarks = Dl_netlist.Benchmarks
module Bench_format = Dl_netlist.Bench_format

type config = {
  listen : Transport.endpoint;
  workers : Transport.endpoint list;
  max_in_flight : int;
  probe_period_s : float;
  fanout_stages : bool;
  max_frame : int;
  connect_timeout_s : float;
  steal_margin : int;
}

let config ?(max_in_flight = 4) ?(probe_period_s = 1.0)
    ?(fanout_stages = false) ?(max_frame = Protocol.default_max_frame)
    ?(connect_timeout_s = 2.0) ?(steal_margin = 2) ~listen ~workers () =
  if workers = [] then invalid_arg "Coord.config: no workers";
  if max_in_flight < 1 then invalid_arg "Coord.config: max_in_flight < 1";
  {
    listen;
    workers;
    max_in_flight;
    probe_period_s;
    fanout_stages;
    max_frame;
    connect_timeout_s;
    steal_margin;
  }

type wstate = {
  w_name : string;  (* endpoint string; the ring member id *)
  w_endpoint : Transport.endpoint;
  mutable alive : bool;
  mutable in_flight : int;          (* dispatches we have outstanding *)
  mutable probe_queue_depth : int;  (* from the last health probe *)
  mutable consecutive_failures : int;
}

type conn = {
  fd : Unix.file_descr;
  mutable thread : Thread.t option;
  mutable closed : bool;
}

type state = Serving | Stopped

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Transport.endpoint;
  ring : Hash_ring.t;
  table : (string, wstate) Hashtbl.t;
  order : wstate list;
  metrics : Metrics.t;
  mutex : Mutex.t;
  cond : Condition.t;
  stop_flag : bool Atomic.t;
  mutable conns : conn list;
  mutable state : state;
  mutable accept_thread : Thread.t option;
  mutable prober : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- worker selection ----------------------------------------------------- *)

let load w = w.in_flight + w.probe_queue_depth

let mark_dead t w =
  locked t (fun () ->
      w.alive <- false;
      w.consecutive_failures <- w.consecutive_failures + 1;
      Condition.broadcast t.cond)

let release t w =
  locked t (fun () ->
      w.in_flight <- w.in_flight - 1;
      Condition.broadcast t.cond)

(* Pick a worker for [key]: the key's home node by default, stolen by the
   least-loaded live worker when the home shard is hot (load difference
   beyond [steal_margin]).  Blocks while every eligible worker is at its
   in-flight cap; [None] once no live untried worker remains. *)
let acquire t ~key ~tried =
  locked t (fun () ->
      let rec go () =
        if Atomic.get t.stop_flag then None
        else
          let usable =
            List.filter
              (fun w -> w.alive && not (Hashtbl.mem tried w.w_name))
              t.order
          in
          if usable = [] then None
          else
            let ready =
              List.filter (fun w -> w.in_flight < t.cfg.max_in_flight) usable
            in
            match ready with
            | [] ->
                Condition.wait t.cond t.mutex;
                go ()
            | first :: rest ->
                let best =
                  List.fold_left
                    (fun acc w -> if load w < load acc then w else acc)
                    first rest
                in
                let home =
                  List.find_map
                    (fun m ->
                      List.find_opt (fun w -> w.w_name = m) ready)
                    (Hash_ring.route t.ring key)
                in
                let chosen =
                  match home with
                  | Some h when load h - load best > t.cfg.steal_margin ->
                      best
                  | Some h -> h
                  | None -> best
                in
                chosen.in_flight <- chosen.in_flight + 1;
                Some chosen
      in
      go ())

let worker_rpc t w request =
  Client.with_client ~max_frame:t.cfg.max_frame
    ~connect_timeout_s:t.cfg.connect_timeout_s w.w_endpoint
    (fun c -> Client.rpc c request)

(* Relay one request, surviving worker deaths: a connection failure (or a
   mid-frame hangup — the worker died while computing) ejects the worker
   and re-dispatches the same request to the next live one, so a job is
   re-run, never lost.  A [Rejected] answer is held while colder workers
   are tried; if every live worker rejects, the last rejection (with its
   [retry_after_ms]) goes back to the client. *)
let dispatch t ~key request =
  let tried = Hashtbl.create 4 in
  let rec attempt last_reject =
    match acquire t ~key ~tried with
    | None -> (
        match last_reject with
        | Some r -> r
        | None -> Protocol.Server_error "no live workers")
    | Some w -> (
        match worker_rpc t w request with
        | resp -> (
            release t w;
            match resp with
            | Protocol.Rejected _ ->
                Hashtbl.replace tried w.w_name ();
                attempt (Some resp)
            | resp -> resp)
        | exception _ ->
            release t w;
            mark_dead t w;
            Hashtbl.replace tried w.w_name ();
            attempt last_reject)
  in
  attempt None

(* --- request handling ------------------------------------------------------ *)

let resolve_circuit = function
  | Protocol.Builtin name -> (
      match Benchmarks.by_name name with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "unknown benchmark %S" name))
  | Protocol.Inline_bench { title; text } -> (
      try Ok (Bench_format.parse_string ~title text) with
      | Bench_format.Parse_error { line; message } ->
          Error (Printf.sprintf "inline bench, line %d: %s" line message)
      | Failure m | Invalid_argument m ->
          Error (Printf.sprintf "inline bench: %s" m))

let experiment_config (spec : Protocol.job_spec) circuit =
  Experiment.config ~seed:spec.seed
    ~max_random_vectors:spec.max_random_vectors
    ~target_yield:spec.target_yield ~collapse_faults:spec.collapse_faults
    ~min_weight_ratio:spec.min_weight_ratio circuit

(* Stage waves respecting the experiment DAG: atpg and layout-ifa only
   need mapping; fault-sim needs atpg, swift needs atpg + layout-ifa.
   Stages within a wave fan out to their (generally different) home
   workers concurrently, warming the distributed store before the final
   [Submit] stitches the projection together from cache hits. *)
let fanout_waves = [ [ "atpg"; "layout-ifa" ]; [ "fault-sim"; "swift" ] ]

let fanout t (spec : Protocol.job_spec) keys =
  List.iter
    (fun wave ->
      let threads =
        List.filter_map
          (fun stage ->
            match List.assoc_opt stage keys with
            | None -> None
            | Some key ->
                Some
                  (Thread.create
                     (fun () ->
                       (* Best-effort warm-up: a failed stage job just
                          means the final submit computes it. *)
                       ignore (dispatch t ~key (Protocol.Serve_stage { spec; stage })))
                     ()))
          wave
      in
      List.iter Thread.join threads)
    fanout_waves

let observe t t0 resp =
  (match resp with
  | Protocol.Result _ | Protocol.Stage_done _ ->
      Metrics.incr_completed t.metrics;
      Metrics.observe_service_ms t.metrics
        ((Unix.gettimeofday () -. t0) *. 1000.0)
  | Protocol.Rejected _ -> Metrics.incr_rejected t.metrics
  | Protocol.Expired -> Metrics.incr_expired t.metrics
  | Protocol.Server_error _ -> Metrics.incr_failed t.metrics
  | _ -> ());
  resp

let handle_submit t (spec : Protocol.job_spec) =
  let t0 = Unix.gettimeofday () in
  match resolve_circuit spec.circuit with
  | Error msg -> Protocol.Server_error msg
  | Ok circuit ->
      let cfg = experiment_config spec circuit in
      let keys = Experiment.stage_keys cfg in
      let key = List.assoc "projection" keys in
      Metrics.incr_accepted t.metrics;
      Metrics.incr_executed t.metrics;
      if t.cfg.fanout_stages then fanout t spec keys;
      observe t t0 (dispatch t ~key (Protocol.Submit spec))

let handle_serve_stage t (spec : Protocol.job_spec) ~stage =
  let t0 = Unix.gettimeofday () in
  match resolve_circuit spec.circuit with
  | Error msg -> Protocol.Server_error msg
  | Ok circuit -> (
      let cfg = experiment_config spec circuit in
      match List.assoc_opt stage (Experiment.stage_keys cfg) with
      | None -> Protocol.Server_error (Printf.sprintf "unknown stage %S" stage)
      | Some key ->
          Metrics.incr_accepted t.metrics;
          Metrics.incr_executed t.metrics;
          observe t t0 (dispatch t ~key (Protocol.Serve_stage { spec; stage })))

(* Store requests are proxied along the key's ring route: the first live
   worker that answers usefully wins. *)
let handle_store t ~key request ~miss =
  let members = Hash_ring.route t.ring key in
  let rec go = function
    | [] -> miss
    | m :: rest -> (
        match Hashtbl.find_opt t.table m with
        | Some w when w.alive -> (
            match worker_rpc t w request with
            | Protocol.Store_found _ as r -> r
            | Protocol.Store_ack true as r -> r
            | _ -> go rest
            | exception _ ->
                mark_dead t w;
                go rest)
        | _ -> go rest)
  in
  go members

let stats t =
  let queue_depth, in_flight =
    locked t (fun () ->
        List.fold_left
          (fun (q, i) w ->
            if w.alive then (q + w.probe_queue_depth, i + w.in_flight)
            else (q, i))
          (0, 0) t.order)
  in
  Metrics.snapshot t.metrics ~queue_depth ~in_flight

let handle t = function
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Get_stats -> Protocol.Stats_reply (stats t)
  | Protocol.Submit spec -> handle_submit t spec
  | Protocol.Serve_stage { spec; stage } -> handle_serve_stage t spec ~stage
  | Protocol.Store_get key ->
      handle_store t ~key (Protocol.Store_get key) ~miss:Protocol.Store_missing
  | Protocol.Store_put { key; data } ->
      handle_store t ~key
        (Protocol.Store_put { key; data })
        ~miss:(Protocol.Store_ack false)
  | Protocol.Shutdown -> Protocol.Stats_reply (stats t)

(* --- connection plumbing --------------------------------------------------- *)

let close_conn t conn =
  locked t (fun () ->
      if not conn.closed then begin
        conn.closed <- true;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let conn_loop t conn =
  let rec loop () =
    match
      Protocol.recv ~max_frame:t.cfg.max_frame Protocol.request_codec conn.fd
    with
    | None -> ()
    | Some req ->
        let resp =
          try handle t req
          with exn -> Protocol.Server_error (Printexc.to_string exn)
        in
        Protocol.send Protocol.response_codec conn.fd resp;
        if req = Protocol.Shutdown then Atomic.set t.stop_flag true else loop ()
  in
  Fun.protect
    ~finally:(fun () -> close_conn t conn)
    (fun () ->
      try loop () with
      | Protocol.Protocol_error _ | Unix.Unix_error _ | End_of_file -> ())

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else
      match
        (try `Conn (fst (Unix.accept ~cloexec:true t.listen_fd)) with
        | Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> `Retry
        | Unix.Unix_error _ -> `Stop)
      with
      | `Retry -> loop ()
      | `Stop -> ()
      | `Conn fd ->
          if Atomic.get t.stop_flag then
            (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            let conn = { fd; thread = None; closed = false } in
            locked t (fun () -> t.conns <- conn :: t.conns);
            conn.thread <- Some (Thread.create (conn_loop t) conn);
            loop ()
          end
  in
  loop ()

(* --- health probes --------------------------------------------------------- *)

let eject_after_failures = 2

let probe_once t w =
  match
    Client.with_client ~max_frame:t.cfg.max_frame
      ~connect_timeout_s:t.cfg.connect_timeout_s w.w_endpoint Client.get_stats
  with
  | stats ->
      locked t (fun () ->
          w.alive <- true;
          w.consecutive_failures <- 0;
          w.probe_queue_depth <- stats.Protocol.queue_depth;
          Condition.broadcast t.cond)
  | exception _ ->
      locked t (fun () ->
          w.consecutive_failures <- w.consecutive_failures + 1;
          if w.consecutive_failures >= eject_after_failures then
            w.alive <- false)

let probe_loop t =
  let rec sleep remaining =
    if remaining > 0.0 && not (Atomic.get t.stop_flag) then begin
      let step = Float.min 0.05 remaining in
      Thread.delay step;
      sleep (remaining -. step)
    end
  in
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else begin
      List.iter (probe_once t) t.order;
      sleep t.cfg.probe_period_s;
      loop ()
    end
  in
  loop ()

(* --- lifecycle ------------------------------------------------------------- *)

let start cfg =
  let listen_fd = Transport.listen cfg.listen in
  let bound = Transport.bound_endpoint listen_fd cfg.listen in
  let names = List.map Transport.to_string cfg.workers in
  let ring = Hash_ring.create names in
  let table = Hashtbl.create 8 in
  let order =
    List.filter_map
      (fun ep ->
        let name = Transport.to_string ep in
        if Hashtbl.mem table name then None
        else begin
          let w =
            {
              w_name = name;
              w_endpoint = ep;
              alive = true;
              in_flight = 0;
              probe_queue_depth = 0;
              consecutive_failures = 0;
            }
          in
          Hashtbl.add table name w;
          Some w
        end)
      cfg.workers
  in
  let t =
    {
      cfg;
      listen_fd;
      bound;
      ring;
      table;
      order;
      metrics = Metrics.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      stop_flag = Atomic.make false;
      conns = [];
      state = Serving;
      accept_thread = None;
      prober = None;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.prober <- Some (Thread.create probe_loop t);
  t

let bound t = t.bound

let workers_alive t =
  locked t (fun () ->
      List.filter_map (fun w -> if w.alive then Some w.w_name else None) t.order)

let request_stop t =
  Atomic.set t.stop_flag true;
  locked t (fun () -> Condition.broadcast t.cond)

let stop t =
  request_stop t;
  let already =
    locked t (fun () ->
        if t.state = Stopped then true
        else begin
          t.state <- Stopped;
          false
        end)
  in
  if not already then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (try Transport.close_quietly (Transport.connect ~timeout_s:1.0 t.bound)
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let conns = locked t (fun () -> t.conns) in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun c -> Option.iter Thread.join c.thread) conns;
    Option.iter Thread.join t.prober;
    (match t.cfg.listen with
    | Transport.Unix_socket path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | Transport.Tcp _ -> ())
  end

let run ?on_ready cfg =
  let t = start cfg in
  let handler = Sys.Signal_handle (fun _ -> request_stop t) in
  let previous =
    List.map (fun s -> (s, Sys.signal s handler)) [ Sys.sigterm; Sys.sigint ]
  in
  Option.iter (fun f -> f t) on_ready;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (s, old) -> Sys.set_signal s old) previous)
    (fun () ->
      while not (Atomic.get t.stop_flag) do
        Thread.delay 0.05
      done;
      stop t)
