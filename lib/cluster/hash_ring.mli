(** Consistent-hash ring over worker endpoints.

    Each member is planted at [replicas] pseudo-random points on a 63-bit
    ring (MD5-derived, so placement is stable across processes and OCaml
    versions); a key belongs to the first member clockwise of its own
    point.  Adding or removing one member therefore moves only ~1/N of
    the key space — the property that makes a worker joining or leaving
    cheap for the store tier. *)

type t

val default_replicas : int
(** 64 virtual nodes per member. *)

val create : ?replicas:int -> string list -> t
(** Members are deduplicated; order does not matter (two rings built from
    permutations of the same list are identical). *)

val members : t -> string list
(** Sorted, deduplicated. *)

val is_empty : t -> bool

val add : t -> string -> t
val remove : t -> string -> t
(** Pure: they return a new ring. *)

val home : t -> string -> string
(** The member owning a key.
    @raise Invalid_argument on an empty ring. *)

val route : ?n:int -> t -> string -> string list
(** The first [n] (default: all) {e distinct} members in ring order
    starting at the key's home — the preference list for fetch-through
    and failover.  Empty for an empty ring; [route t key] always starts
    with [home t key]. *)
