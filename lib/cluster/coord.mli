(** The fleet coordinator: speaks {!Dl_serve.Protocol} on its listen
    endpoint and relays each request to one of N registered worker
    daemons, chosen by consistent-hashing the request's stage key
    ({!Hash_ring}).

    Placement policy, in order:
    - the key's {e home} worker (ring successor) — so identical requests
      land on the node that already holds, or is already computing, the
      artifact;
    - {e work stealing}: when the home worker's load (coordinator-side
      in-flight + last probed queue depth) exceeds the least-loaded live
      worker's by more than [steal_margin], the cold worker takes the
      job — a hot shard spills instead of queueing;
    - a per-worker in-flight cap ([max_in_flight]); the relay blocks
      until some live worker is under its cap.

    Fault handling: a connect failure or mid-frame hangup ejects the
    worker and re-dispatches the request to the next live one (jobs are
    re-run, never lost — results are content-addressed so a re-run is
    bit-identical).  A background prober [Get_stats]s every worker each
    [probe_period_s]: repeated failures eject a node, one success
    readmits it and refreshes its queue depth. *)

type config = {
  listen : Dl_serve.Transport.endpoint;
  workers : Dl_serve.Transport.endpoint list;
  max_in_flight : int;      (** Per-worker outstanding-dispatch cap. *)
  probe_period_s : float;
  fanout_stages : bool;
      (** Fan a [Submit] out as [serve-stage] waves ([atpg] + [layout-ifa],
          then [fault-sim] + [swift]) across the ring before relaying the
          final submit — the distributed store then serves the submit's
          stages as hits/fetches. *)
  max_frame : int;
  connect_timeout_s : float;
  steal_margin : int;
}

val config :
  ?max_in_flight:int -> ?probe_period_s:float -> ?fanout_stages:bool ->
  ?max_frame:int -> ?connect_timeout_s:float -> ?steal_margin:int ->
  listen:Dl_serve.Transport.endpoint ->
  workers:Dl_serve.Transport.endpoint list -> unit -> config
(** Defaults: 4 in-flight per worker, 1 s probes, no stage fan-out,
    {!Dl_serve.Protocol.default_max_frame}, 2 s connects, steal margin 2.
    @raise Invalid_argument on an empty worker list. *)

type t

val start : config -> t
(** Bind, start the accept loop and the health prober, return.  Workers
    need not be up yet — dispatch ejects the dead and the prober readmits
    them once they answer. *)

val bound : t -> Dl_serve.Transport.endpoint
(** Resolves an ephemeral [Tcp (host, 0)] listen port. *)

val workers_alive : t -> string list
(** Endpoint strings of workers currently considered live. *)

val stats : t -> Dl_serve.Protocol.stats
(** Coordinator-side counters; [queue_depth]/[in_flight] aggregate the
    live workers. *)

val stop : t -> unit
(** Stop accepting, drain relay connections, join all threads.  Workers
    are left running (they are independent daemons). *)

val run : ?on_ready:(t -> unit) -> config -> unit
(** {!start}, then block until a [Shutdown] request or SIGINT/SIGTERM,
    then {!stop} — the body of [dlproj coord]. *)
