type t = {
  (* Sorted by point; binary-searched by [home]. *)
  points : (int * string) array;
  members : string list;
  replicas : int;
}

let default_replicas = 64

(* 63-bit ring position from an MD5 prefix — stable across runs,
   processes and architectures (unlike [Hashtbl.hash], whose output is
   version-dependent and only 30-bit). *)
let point_of s =
  let d = Digest.string s in
  let b i = Char.code d.[i] in
  let open Int64 in
  let v =
    List.fold_left
      (fun acc i -> logor (shift_left acc 8) (of_int (b i)))
      0L [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  to_int (shift_right_logical v 1)

let create ?(replicas = default_replicas) members =
  if replicas < 1 then invalid_arg "Hash_ring.create: replicas < 1";
  let members = List.sort_uniq compare members in
  let points =
    members
    |> List.concat_map (fun m ->
           List.init replicas (fun i ->
               (point_of (Printf.sprintf "%s#%d" m i), m)))
    |> Array.of_list
  in
  Array.sort compare points;
  { points; members; replicas }

let members t = t.members
let is_empty t = t.members = []

let add t member =
  if List.mem member t.members then t
  else create ~replicas:t.replicas (member :: t.members)

let remove t member =
  create ~replicas:t.replicas
    (List.filter (fun m -> m <> member) t.members)

(* Index of the first ring point clockwise of [p] (wrapping). *)
let successor t p =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) <= p then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let home t key =
  if t.members = [] then invalid_arg "Hash_ring.home: empty ring";
  snd t.points.(successor t (point_of key))

(* Distinct members in ring order starting at the key's home — the
   preference list peers consult for fetch-through. *)
let route ?n t key =
  if t.members = [] then []
  else begin
    let want =
      match n with
      | None -> List.length t.members
      | Some n -> min n (List.length t.members)
    in
    let total = Array.length t.points in
    let start = successor t (point_of key) in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let i = ref 0 in
    while Hashtbl.length seen < want && !i < total do
      let _, m = t.points.((start + !i) mod total) in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        out := m :: !out
      end;
      incr i
    done;
    List.rev !out
  end
