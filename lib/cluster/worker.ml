module Server = Dl_serve.Server
module Client = Dl_serve.Client
module Protocol = Dl_serve.Protocol
module Transport = Dl_serve.Transport

(* Peer interaction tuning: short enough that a dead peer costs a worker
   milliseconds-to-a-second per stage, not a hung job. *)
let peer_connect_timeout_s = 1.0
let peer_frame_deadline_s = 10.0
let peer_cooldown_s = 2.0
let fetch_candidates = 2

type state = {
  mutex : Mutex.t;
  mutable ring : Hash_ring.t;
  mutable self : string;  (* endpoint string; "" until the server is bound *)
  (* endpoint -> do-not-retry-before instant; a failed peer is skipped for
     [peer_cooldown_s] so one dead node cannot serialize every stage
     behind repeated connect timeouts. *)
  cooldown : (string, float) Hashtbl.t;
}

type t = { state : state; server : Server.t }

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let in_cooldown st peer =
  locked st (fun () ->
      match Hashtbl.find_opt st.cooldown peer with
      | Some until -> Unix.gettimeofday () < until
      | None -> false)

let note_failure st peer =
  locked st (fun () ->
      Hashtbl.replace st.cooldown peer
        (Unix.gettimeofday () +. peer_cooldown_s))

let note_success st peer = locked st (fun () -> Hashtbl.remove st.cooldown peer)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let peer_rpc st peer request =
  match
    Client.with_client ~connect_timeout_s:peer_connect_timeout_s
      (Transport.of_string peer)
      (fun c -> Client.rpc ~deadline_s:peer_frame_deadline_s c request)
  with
  | resp ->
      note_success st peer;
      Some resp
  | exception _ ->
      note_failure st peer;
      None

(* Fetch-through: ask the key's home node (then the next distinct member)
   for the artifact before computing it here.  Validation of the bytes is
   the caller's job ({!Dl_store.Stage.run} decodes before trusting). *)
let peer_fetch st key =
  let peers =
    locked st (fun () ->
        Hash_ring.route ~n:(fetch_candidates + 1) st.ring key
        |> List.filter (fun p -> p <> st.self))
    |> take fetch_candidates
  in
  let rec go = function
    | [] -> None
    | peer :: rest ->
        if in_cooldown st peer then go rest
        else begin
          match peer_rpc st peer (Protocol.Store_get key) with
          | Some (Protocol.Store_found data) -> Some (Bytes.of_string data)
          | Some _ -> go rest
          | None -> go rest
        end
  in
  go peers

(* Replication push: a freshly computed artifact goes to its key's home
   node, so the next worker that hashes there finds it without a second
   network hop.  Best-effort by contract. *)
let peer_publish st key data =
  let home =
    locked st (fun () ->
        if Hash_ring.is_empty st.ring then None
        else Some (Hash_ring.home st.ring key))
  in
  match home with
  | Some peer when peer <> st.self && not (in_cooldown st peer) ->
      ignore
        (peer_rpc st peer
           (Protocol.Store_put { key; data = Bytes.to_string data }))
  | _ -> ()

let start ?workers ?queue_capacity ?cache_capacity ?domains_per_worker
    ?max_frame ?read_deadline_s ?on_job_start ?cache_dir ~listen () =
  let state =
    {
      mutex = Mutex.create ();
      ring = Hash_ring.create [];
      self = "";
      cooldown = Hashtbl.create 8;
    }
  in
  let remote =
    {
      Dl_store.Stage.fetch = (fun key -> peer_fetch state key);
      publish = (fun key data -> peer_publish state key data);
    }
  in
  let cfg =
    Server.config ?workers ?queue_capacity ?cache_capacity
      ?domains_per_worker ?max_frame ?read_deadline_s ?on_job_start
      ?cache_dir ~remote ~listen ()
  in
  let server = Server.start cfg in
  state.self <- Transport.to_string (Server.bound server);
  { state; server }

let bound t = Server.bound t.server
let server t = t.server

let set_peers t endpoints =
  let members = List.map Transport.to_string endpoints in
  locked t.state (fun () -> t.state.ring <- Hash_ring.create members)

let peers t = locked t.state (fun () -> Hash_ring.members t.state.ring)

let stop t = Server.stop t.server
