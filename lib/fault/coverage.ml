type t = {
  weights : float array;
  total_weight : float;
  (* Detection events sorted by vector index: (index, weight). *)
  events : (int * float) array;
  (* cumulative.(i): weight of events.(0..i), summed in event order (the
     same order the old linear scan used, so queries are bit-identical). *)
  cumulative : float array;
}

let make ?weights first_detection =
  let n = Array.length first_detection in
  let weights =
    match weights with
    | None -> Array.make n 1.0
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Coverage.make: weights length mismatch";
        Array.iter
          (fun x -> if x < 0.0 then invalid_arg "Coverage.make: negative weight")
          w;
        Array.copy w
  in
  let events = ref [] in
  Array.iteri
    (fun i d ->
      match d with Some k -> events := (k, weights.(i)) :: !events | None -> ())
    first_detection;
  let events = Array.of_list !events in
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) events;
  let total_weight = Dl_util.Stats.total weights in
  let acc = ref 0.0 in
  let cumulative =
    Array.map
      (fun (_, w) ->
        acc := !acc +. w;
        !acc)
      events
  in
  { weights; total_weight; events; cumulative }

let total_faults t = Array.length t.weights
let total_weight t = t.total_weight

(* Number of events with vector index < k: binary search for the first
   event at index >= k over the sorted events array. *)
let events_before t k =
  let lo = ref 0 and hi = ref (Array.length t.events) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.events.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let at t k =
  if t.total_weight = 0.0 then 1.0
  else begin
    let m = events_before t k in
    if m = 0 then 0.0 else t.cumulative.(m - 1) /. t.total_weight
  end

let final t =
  if t.total_weight = 0.0 then 1.0
  else begin
    let n = Array.length t.cumulative in
    if n = 0 then 0.0 else t.cumulative.(n - 1) /. t.total_weight
  end

let curve t ~ks = Array.map (fun k -> (k, at t k)) ks

let log_spaced ~max ~points =
  if max < 1 then invalid_arg "Coverage.log_spaced: need max >= 1";
  if points < 1 then invalid_arg "Coverage.log_spaced: need points >= 1";
  let raw =
    Array.init points (fun i ->
        let frac =
          if points = 1 then 1.0 else float_of_int i /. float_of_int (points - 1)
        in
        int_of_float (Float.round (exp (frac *. log (float_of_int max)))))
  in
  let seen = Hashtbl.create points in
  let out = ref [] in
  Array.iter
    (fun k ->
      let k = Stdlib.max 1 (Stdlib.min max k) in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        out := k :: !out
      end)
    raw;
  if not (Hashtbl.mem seen max) then out := max :: !out;
  let arr = Array.of_list !out in
  Array.sort Stdlib.compare arr;
  arr

let detections_in_order t =
  if t.total_weight = 0.0 then [||]
  else
    Array.mapi
      (fun i (idx, _) -> (idx, t.cumulative.(i) /. t.total_weight))
      t.events
