(** Coverage-versus-test-length curves built from first-detection records.

    Works for both the unweighted stuck-at coverage [T(k)] (and the
    unweighted realistic coverage [Γ(k)]) and the weighted realistic
    coverage [Θ(k)] of the paper (eq. 6): supply per-fault weights to weight
    each detection. *)

type t

val make : ?weights:float array -> int option array -> t
(** [make ~weights first_detection] — [first_detection.(i)] is the index of
    the first vector detecting fault [i] ([None] if never).  [weights]
    defaults to all-ones (unweighted coverage). *)

val total_faults : t -> int
val total_weight : t -> float

val at : t -> int -> float
(** [at t k]: coverage after the first [k] vectors (detections at indices
    [< k]), in [\[0,1\]].  O(log n) — binary search over the sorted event
    array plus a precomputed cumulative-weight table, so sampling a whole
    {!curve} over many [ks] is O(n log n). *)

val final : t -> float
(** Coverage with the complete vector set. *)

val curve : t -> ks:int array -> (int * float) array
(** Sample the curve at the given vector counts. *)

val log_spaced : max:int -> points:int -> int array
(** Roughly log-spaced distinct integers in [\[1, max\]], always including
    both endpoints — the natural x-axis for Fig. 4. *)

val detections_in_order : t -> (int * float) array
(** [(vector_index, cumulative_coverage)] at each detection event, in
    vector order: the exact staircase of the coverage curve. *)
