(** Parallel-pattern single-fault-propagation (PPSFP) stuck-at fault
    simulation: 64 test vectors per pass, cone-limited faulty-value
    propagation, optional fault dropping.

    This produces the [T(k)] data of the paper's Fig. 4/5 at gate level. *)

open Dl_netlist

(** Per-run engine counters, for performance accounting ([--sim-stats],
    bench JSON).  Counter semantics are engine-specific by design — e.g. the
    pruned engines simulate stems instead of faults — but detection results
    never are. *)
module Stats : sig
  type t = {
    gate_evaluations : int;
        (** Faulty-machine gate evaluations, in 64-pattern units (a wide
            4-word gate fetch counts 4). *)
    events : int;  (** Worklist pops in the event-driven engines. *)
    faults_inferred : int;
        (** Fault/block decisions made by FFR critical-path tracing. *)
    faults_simulated : int;
        (** Fault/block decisions made by explicit propagation. *)
    stem_simulations : int;
        (** Stem-toggle observability simulations (pruned engines). *)
    faults_dropped : int;
        (** Faults retired by fault dropping (= detected faults when
            [drop_detected], 0 otherwise). *)
  }

  val zero : t
  val add : t -> t -> t

  val pp : Format.formatter -> t -> unit
  (** One-line human-readable rendering. *)
end

type result = {
  faults : Stuck_at.t array;       (** As supplied, same order. *)
  first_detection : int option array;
      (** [first_detection.(i)]: index (0-based) of the first vector that
          detects fault [i], or [None] if undetected by the set. *)
  vectors_applied : int;
  gate_evaluations : int;          (** Faulty-machine gate evaluations. *)
  stats : Stats.t;                 (** Engine counters for this run. *)
}

(** PPSFP engine variants.  All five produce bit-identical [faults],
    [first_detection], [vectors_applied], and [on_detect] event streams on
    the same inputs; they differ only in speed and in counter semantics:

    - [Reference]: pre-kernel allocating engine (the oracle).
    - [Flat]: PR 2 flat-kernel engine — what {!run} dispatches to.
      [gate_evaluations] matches [Reference] exactly.
    - [Event]: resident-faulty incremental engine; scheduling decisions
      (and hence [gate_evaluations]) identical to [Flat], but fanin reads
      skip the touched-overlay branch.
    - [Pruned]: fanout-free-region inference — per block, one stem-toggle
      simulation per region hosting a live fault plus one critical-path
      trace per fault; no per-fault propagation at all.
    - [Wide]: [Pruned] over 256-pattern (4-word) blocks. *)
type engine = Reference | Flat | Event | Pruned | Wide

val engines : engine list
(** All variants, [Reference] first. *)

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

val run :
  ?drop_detected:bool ->
  ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  result
(** [run c ~faults ~vectors] simulates every fault against the vector
    sequence.  With [drop_detected] (default [true]) a fault is not
    simulated after its first detection — the standard production mode; set
    it to [false] to observe every detection (e.g. for dictionaries, via
    [on_detect], which fires once per fault/vector detection event in
    increasing vector order per fault).

    Runs on the flat {!Dl_netlist.Kernel} engine: the circuit is lowered
    once into CSR int arrays and every per-gate operation in the hot loop is
    allocation-free.  Results are bit-for-bit identical to
    {!Reference.run}. *)

val run_parallel :
  ?drop_detected:bool ->
  ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
  ?domains:int ->
  ?pool:Dl_util.Parallel.t ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  result
(** Multicore [run]: the fault array is sharded contiguously across a
    domain pool ([domains] defaults to
    [Domain.recommended_domain_count ()]; pass [pool] to reuse an existing
    {!Dl_util.Parallel} pool across calls, in which case [domains] is
    ignored).  Each worker keeps private scratch state while the circuit
    and the good-machine words of each 64-vector block are shared
    read-only, and per-fault results are merged back in fault-index order.

    The result is bit-for-bit identical to [run] on the same inputs:
    [first_detection] and [gate_evaluations] are equal, and [on_detect]
    fires the same events in the same order (events are buffered per block
    and replayed in increasing fault index, which is the serial order).
    The callback runs in the calling domain only.

    Degenerate inputs are first-class: an empty fault universe returns
    immediately (no good-machine simulation); a [domains] request wider
    than the fault universe is clamped before any domain is spawned (and a
    caller-supplied [pool] wider than the universe is sharded at one fault
    per worker, surplus workers idle); single-pattern / 1..63-vector tail
    blocks behave identically to [run]. *)

(** The pre-kernel PPSFP engine, retained verbatim as the oracle for
    property-testing the flat-kernel engine (and as the baseline for the
    old-vs-new benchmark sections).  Same semantics, same signatures;
    allocates per gate evaluation. *)
module Reference : sig
  val run :
    ?drop_detected:bool ->
    ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
    Circuit.t ->
    faults:Stuck_at.t array ->
    vectors:bool array array ->
    result

  val run_parallel :
    ?drop_detected:bool ->
    ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
    ?domains:int ->
    ?pool:Dl_util.Parallel.t ->
    Circuit.t ->
    faults:Stuck_at.t array ->
    vectors:bool array array ->
    result
end

val run_with :
  engine:engine ->
  ?drop_detected:bool ->
  ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  result
(** [run] under an explicit engine variant ([run_with ~engine:Flat] = [run]).
    Detection results are engine-independent; see {!engine} for the counter
    contract per variant. *)

val run_parallel_with :
  engine:engine ->
  ?drop_detected:bool ->
  ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
  ?domains:int ->
  ?pool:Dl_util.Parallel.t ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  result
(** [run_parallel] under an explicit engine variant.  Bit-identical to
    [run_with ~engine] on the same inputs regardless of worker count —
    including [stats] totals: the pruned engines toggle each needed stem
    exactly once per block in a separate phase before fault tracing, so
    sharding never changes what work is done, only who does it. *)

val lowest_set_bit : int64 -> int option
(** Index (0-63) of the least-significant set bit, [None] for [0L].
    Constant-time de Bruijn bit scan (exposed for testing). *)

val detected_count : result -> int

val coverage : result -> float
(** Final fault coverage [m/n]. *)

val detects_fault : Circuit.t -> Stuck_at.t -> bool array -> bool
(** [detects_fault c f v]: single-vector oracle via dual ternary
    simulation; independent of the PPSFP machinery (used for
    cross-checking). *)

(** {1 Multi-detect simulation}

    n-detection generalises dropping from "first detection" to "first
    [drop_after] detections": a fault stays in the simulated set until it
    has been observed at [drop_after] distinct vectors.  The profile below
    is the substrate for the {!Dl_ndet} subsystem's T{_n}(k) coverage
    curves and DL(n) projections. *)

type ndet = {
  faults : Stuck_at.t array;
  drop_after : int;  (** the detection quota n (>= 1) *)
  counts : int array;
      (** per-fault detection count, capped at [drop_after] *)
  detections : int array;
      (** row-major [n_faults * drop_after]: slot [f * drop_after + k] holds
          the vector index of fault [f]'s (k+1)-th detection, or [-1] if the
          fault was detected fewer than [k+1] times *)
  vectors_applied : int;
  gate_evaluations : int;
  stats : Stats.t;
      (** accumulated engine counters; [faults_dropped] is the number of
          faults that reached the full [drop_after] quota *)
}

val run_ndet :
  ?engine:engine ->
  ?domains:int ->
  ?pool:Dl_util.Parallel.t ->
  ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
  drop_after:int ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  ndet
(** Simulate until each fault has been detected [drop_after] times (or the
    vectors run out), recording every k-th detection index.  Implemented as
    a chunked driver over {!run_with}/{!run_parallel_with} with dropping
    disabled inside each engine-native block, refreshing the live-fault set
    at block boundaries — exactly the granularity at which the dropping
    engines refresh theirs, so [drop_after:1] reproduces
    [run ~drop_detected:true] bit-for-bit on every engine: identical first
    detections and an identical counted [on_detect] event stream.
    [on_detect] fires only for counted detections (at most [drop_after] per
    fault), in the underlying engine's replay order with chunk-global
    vector indices.  [engine] defaults to [Flat]; [domains]/[pool] select
    the parallel path (one pool is created up front and reused across all
    chunks).  Raises [Invalid_argument] if [drop_after < 1]. *)

val ndet_kth_detection : ndet -> k:int -> int option array
(** Vector index of each fault's k-th detection (1-based [k]), [None] where
    the fault was detected fewer than [k] times.  [k:1] is the
    [first_detection] array of the equivalent single-detection run.
    Raises [Invalid_argument] unless [1 <= k <= drop_after]. *)

val ndet_first_detection : ndet -> int option array
(** [ndet_kth_detection ~k:1]. *)
