(** Parallel-pattern single-fault-propagation (PPSFP) stuck-at fault
    simulation: 64 test vectors per pass, cone-limited faulty-value
    propagation, optional fault dropping.

    This produces the [T(k)] data of the paper's Fig. 4/5 at gate level. *)

open Dl_netlist

type result = {
  faults : Stuck_at.t array;       (** As supplied, same order. *)
  first_detection : int option array;
      (** [first_detection.(i)]: index (0-based) of the first vector that
          detects fault [i], or [None] if undetected by the set. *)
  vectors_applied : int;
  gate_evaluations : int;          (** Faulty-machine gate evaluations. *)
}

val run :
  ?drop_detected:bool ->
  ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  result
(** [run c ~faults ~vectors] simulates every fault against the vector
    sequence.  With [drop_detected] (default [true]) a fault is not
    simulated after its first detection — the standard production mode; set
    it to [false] to observe every detection (e.g. for dictionaries, via
    [on_detect], which fires once per fault/vector detection event in
    increasing vector order per fault).

    Runs on the flat {!Dl_netlist.Kernel} engine: the circuit is lowered
    once into CSR int arrays and every per-gate operation in the hot loop is
    allocation-free.  Results are bit-for-bit identical to
    {!Reference.run}. *)

val run_parallel :
  ?drop_detected:bool ->
  ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
  ?domains:int ->
  ?pool:Dl_util.Parallel.t ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  result
(** Multicore [run]: the fault array is sharded contiguously across a
    domain pool ([domains] defaults to
    [Domain.recommended_domain_count ()]; pass [pool] to reuse an existing
    {!Dl_util.Parallel} pool across calls, in which case [domains] is
    ignored).  Each worker keeps private scratch state while the circuit
    and the good-machine words of each 64-vector block are shared
    read-only, and per-fault results are merged back in fault-index order.

    The result is bit-for-bit identical to [run] on the same inputs:
    [first_detection] and [gate_evaluations] are equal, and [on_detect]
    fires the same events in the same order (events are buffered per block
    and replayed in increasing fault index, which is the serial order).
    The callback runs in the calling domain only.

    Degenerate inputs are first-class: an empty fault universe returns
    immediately (no good-machine simulation); a [domains] request wider
    than the fault universe is clamped before any domain is spawned (and a
    caller-supplied [pool] wider than the universe is sharded at one fault
    per worker, surplus workers idle); single-pattern / 1..63-vector tail
    blocks behave identically to [run]. *)

(** The pre-kernel PPSFP engine, retained verbatim as the oracle for
    property-testing the flat-kernel engine (and as the baseline for the
    old-vs-new benchmark sections).  Same semantics, same signatures;
    allocates per gate evaluation. *)
module Reference : sig
  val run :
    ?drop_detected:bool ->
    ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
    Circuit.t ->
    faults:Stuck_at.t array ->
    vectors:bool array array ->
    result

  val run_parallel :
    ?drop_detected:bool ->
    ?on_detect:(fault_index:int -> vector_index:int -> unit) ->
    ?domains:int ->
    ?pool:Dl_util.Parallel.t ->
    Circuit.t ->
    faults:Stuck_at.t array ->
    vectors:bool array array ->
    result
end

val lowest_set_bit : int64 -> int option
(** Index (0-63) of the least-significant set bit, [None] for [0L].
    Constant-time de Bruijn bit scan (exposed for testing). *)

val detected_count : result -> int

val coverage : result -> float
(** Final fault coverage [m/n]. *)

val detects_fault : Circuit.t -> Stuck_at.t -> bool array -> bool
(** [detects_fault c f v]: single-vector oracle via dual ternary
    simulation; independent of the PPSFP machinery (used for
    cross-checking). *)
