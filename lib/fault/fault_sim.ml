open Dl_netlist
module Sim2 = Dl_logic.Sim2
module Parallel = Dl_util.Parallel

(* Per-run simulation counters.  [gate_evaluations] is counted in 64-pattern
   units everywhere (the wide engine counts 4 per 256-pattern gate fetch) so
   throughputs stay comparable across engines; the remaining counters are
   whatever the engine actually tracks — the reference engine reports only
   its evaluation count. *)
module Stats = struct
  type t = {
    gate_evaluations : int;
    events : int;
    faults_inferred : int;
    faults_simulated : int;
    stem_simulations : int;
    faults_dropped : int;
  }

  let zero =
    {
      gate_evaluations = 0;
      events = 0;
      faults_inferred = 0;
      faults_simulated = 0;
      stem_simulations = 0;
      faults_dropped = 0;
    }

  let add a b =
    {
      gate_evaluations = a.gate_evaluations + b.gate_evaluations;
      events = a.events + b.events;
      faults_inferred = a.faults_inferred + b.faults_inferred;
      faults_simulated = a.faults_simulated + b.faults_simulated;
      stem_simulations = a.stem_simulations + b.stem_simulations;
      faults_dropped = a.faults_dropped + b.faults_dropped;
    }

  let pp ppf s =
    Format.fprintf ppf
      "%d gate evals, %d events, %d faults traced / %d simulated (%d stem \
       sims), %d dropped"
      s.gate_evaluations s.events s.faults_inferred s.faults_simulated
      s.stem_simulations s.faults_dropped
end

type result = {
  faults : Stuck_at.t array;
  first_detection : int option array;
  vectors_applied : int;
  gate_evaluations : int;
  stats : Stats.t;
}

type engine = Reference | Flat | Event | Pruned | Wide

let engines = [ Reference; Flat; Event; Pruned; Wide ]

let engine_to_string = function
  | Reference -> "reference"
  | Flat -> "flat"
  | Event -> "event"
  | Pruned -> "pruned"
  | Wide -> "wide"

let engine_of_string = function
  | "reference" -> Some Reference
  | "flat" -> Some Flat
  | "event" -> Some Event
  | "pruned" -> Some Pruned
  | "wide" -> Some Wide
  | _ -> None

(* Retired-early count, shared by every driver: with fault dropping every
   detected fault is retired at its detecting block. *)
let dropped_of ~drop_detected first_detection =
  if not drop_detected then 0
  else
    Array.fold_left
      (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
      0 first_detection

(* --- Shared helpers ------------------------------------------------------- *)

(* Constant-time bit-scan-forward: isolate the lowest set bit with
   [w land (-w)], then perfect-hash the isolated bit through a de Bruijn
   multiplication (the classic chess-programming B(2,6) construction). *)
let debruijn64 = 0x03f79d71b4cb0a89L

let debruijn_index =
  [|
    0;  1;  48; 2;  57; 49; 28; 3;
    61; 58; 50; 42; 38; 29; 17; 4;
    62; 55; 59; 36; 53; 51; 43; 22;
    45; 39; 33; 30; 24; 18; 12; 5;
    63; 47; 56; 27; 60; 41; 37; 16;
    54; 35; 52; 21; 44; 32; 23; 11;
    46; 26; 40; 15; 34; 20; 31; 10;
    25; 14; 19; 9;  13; 8;  7;  6;
  |]

let lowest_set_bit w =
  if w = 0L then None
  else
    let isolated = Int64.logand w (Int64.neg w) in
    Some
      debruijn_index.(Int64.to_int
                        (Int64.shift_right_logical
                           (Int64.mul isolated debruijn64)
                           58))

let output_map (c : Circuit.t) =
  let is_output = Array.make (Circuit.node_count c) false in
  Array.iter (fun o -> is_output.(o) <- true) c.outputs;
  is_output

let fire_events callback ~base ~count ~fault_index word =
  for bit = 0 to count - 1 do
    if Int64.logand (Int64.shift_right_logical word bit) 1L = 1L then
      callback ~fault_index ~vector_index:(base + bit)
  done

(* The already-recorded check comes first so the bit scan (and its [Some]
   allocation) runs at most once per fault, not once per detecting block. *)
let record_first first_detection fi ~base word =
  match first_detection.(fi) with
  | Some _ -> ()
  | None -> (
      match lowest_set_bit word with
      | Some bit -> first_detection.(fi) <- Some (base + bit)
      | None -> ())

let valid_mask_of count =
  if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L

(* --- Reference engine ------------------------------------------------------

   The pre-kernel PPSFP implementation, retained verbatim as the oracle the
   flat-kernel engine below is property-tested against (same detection
   words, same [first_detection], same [gate_evaluations]).  It allocates
   per gate evaluation (fanin [Array.map]s, [int list] schedule buckets),
   which is exactly what the kernel engine eliminates. *)
module Reference = struct
  (* Pending-node schedule bucketed by level, so faulty values propagate in
     topological order and each node is evaluated once per fault/block. *)
  module Schedule = struct
    type t = {
      buckets : int list array;
      queued : bool array;
      mutable level : int;
      mutable remaining : int;
    }

    let create depth nodes =
      {
        buckets = Array.make (depth + 1) [];
        queued = Array.make nodes false;
        level = 0;
        remaining = 0;
      }

    let push t ~level id =
      if not t.queued.(id) then begin
        t.queued.(id) <- true;
        t.buckets.(level) <- id :: t.buckets.(level);
        if level < t.level then t.level <- level;
        t.remaining <- t.remaining + 1
      end

    let reset t = t.level <- 0

    let pop t =
      if t.remaining = 0 then None
      else begin
        while t.buckets.(t.level) = [] do
          t.level <- t.level + 1
        done;
        match t.buckets.(t.level) with
        | [] -> assert false
        | id :: rest ->
            t.buckets.(t.level) <- rest;
            t.queued.(id) <- false;
            t.remaining <- t.remaining - 1;
            Some id
      end
  end

  (* Per-worker mutable state: the faulty-machine scratch arrays and
     schedule.  The circuit, the [is_output] map and the good-machine words
     of the current block are shared read-only between workers. *)
  type scratch = {
    schedule : Schedule.t;
    faulty : int64 array;
    touched : bool array;
    mutable touched_list : int list;
    mutable gate_evaluations : int;
  }

  let make_scratch (c : Circuit.t) =
    let n_nodes = Circuit.node_count c in
    {
      schedule = Schedule.create (Circuit.depth c) n_nodes;
      faulty = Array.make n_nodes 0L;
      touched = Array.make n_nodes false;
      touched_list = [];
      gate_evaluations = 0;
    }

  (* Simulate one fault against one 64-vector block.  Returns the detection
     word (one bit per vector of the block that propagates a difference to
     a primary output).  The scratch arrays are clean on entry and are
     cleaned again before returning.  This is the single code path used by
     both the serial and the parallel driver, which is what makes them
     bit-for-bit identical. *)
  let simulate_fault (c : Circuit.t) st ~is_output ~good ~valid_mask
      (f : Stuck_at.t) =
    let touch id v =
      if not st.touched.(id) then begin
        st.touched.(id) <- true;
        st.touched_list <- id :: st.touched_list
      end;
      st.faulty.(id) <- v
    in
    let value_of id = if st.touched.(id) then st.faulty.(id) else good.(id) in
    let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
    (* Seed the faulty machine at the fault site. *)
    let detect_word = ref 0L in
    let seeded =
      match f.site with
      | Stuck_at.Stem id ->
          let diff =
            Int64.logand (Int64.logxor good.(id) stuck_word) valid_mask
          in
          if diff = 0L then false
          else begin
            touch id stuck_word;
            if is_output.(id) then detect_word := diff;
            Array.iter
              (fun succ -> Schedule.push st.schedule ~level:c.levels.(succ) succ)
              c.fanouts.(id);
            true
          end
      | Stuck_at.Branch { gate; pin } ->
          let nd = c.nodes.(gate) in
          let ins = Array.map (fun src -> good.(src)) nd.fanin in
          ins.(pin) <- stuck_word;
          st.gate_evaluations <- st.gate_evaluations + 1;
          let v = Gate.eval_word nd.kind ins in
          let diff = Int64.logand (Int64.logxor good.(gate) v) valid_mask in
          if diff = 0L then false
          else begin
            touch gate v;
            if is_output.(gate) then detect_word := diff;
            Array.iter
              (fun succ -> Schedule.push st.schedule ~level:c.levels.(succ) succ)
              c.fanouts.(gate);
            true
          end
    in
    if seeded then begin
      let rec drain () =
        match Schedule.pop st.schedule with
        | None -> ()
        | Some id ->
            let nd = c.nodes.(id) in
            let ins = Array.map value_of nd.fanin in
            (* A branch fault keeps forcing its pin on every evaluation
               of its host gate. *)
            (match f.site with
            | Stuck_at.Branch { gate; pin } when gate = id ->
                ins.(pin) <- stuck_word
            | _ -> ());
            st.gate_evaluations <- st.gate_evaluations + 1;
            let v = Gate.eval_word nd.kind ins in
            let forced =
              match f.site with
              | Stuck_at.Stem sid when sid = id -> stuck_word
              | _ -> v
            in
            let diff = Int64.logand (Int64.logxor good.(id) forced) valid_mask in
            if diff <> 0L || st.touched.(id) then begin
              touch id forced;
              if diff <> 0L then begin
                if is_output.(id) then
                  detect_word := Int64.logor !detect_word diff;
                Array.iter
                  (fun succ ->
                    Schedule.push st.schedule ~level:c.levels.(succ) succ)
                  c.fanouts.(id)
              end
            end;
            drain ()
      in
      drain ();
      List.iter (fun id -> st.touched.(id) <- false) st.touched_list;
      st.touched_list <- [];
      Schedule.reset st.schedule
    end;
    !detect_word

  let run ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults ~vectors =
    let n_faults = Array.length faults in
    let first_detection = Array.make n_faults None in
    let live = Array.make n_faults true in
    let st = make_scratch c in
    let is_output = output_map c in
    let n_vectors = Array.length vectors in
    let n_blocks = (n_vectors + 63) / 64 in
    for block = 0 to n_blocks - 1 do
      let base = block * 64 in
      let count = min 64 (n_vectors - base) in
      let patterns = Array.sub vectors base count in
      let words = Sim2.words_of_patterns c patterns in
      let good = Sim2.run c words in
      let valid_mask = valid_mask_of count in
      for fi = 0 to n_faults - 1 do
        if live.(fi) then begin
          let dw = simulate_fault c st ~is_output ~good ~valid_mask faults.(fi) in
          if dw <> 0L then begin
            record_first first_detection fi ~base dw;
            (match on_detect with
            | Some callback ->
                fire_events callback ~base ~count ~fault_index:fi dw
            | None -> ());
            if drop_detected then live.(fi) <- false
          end
        end
      done
    done;
    {
      faults;
      first_detection;
      vectors_applied = n_vectors;
      gate_evaluations = st.gate_evaluations;
      stats =
        { Stats.zero with
          gate_evaluations = st.gate_evaluations;
          faults_dropped = dropped_of ~drop_detected first_detection };
    }

  let run_in_pool ~drop_detected ~on_detect pool (c : Circuit.t) ~faults
      ~vectors =
    let n_faults = Array.length faults in
    (* A pool wider than the fault universe would create empty shards whose
       scratch state (O(nodes) each) is allocated for nothing; clamping
       changes no result because sharding is by contiguous fault index. *)
    let shards = min (Parallel.size pool) n_faults in
    let first_detection = Array.make n_faults None in
    let live = Array.make n_faults true in
    let is_output = output_map c in
    let scratches = Array.init shards (fun _ -> make_scratch c) in
    let detect_words =
      match on_detect with Some _ -> Array.make n_faults 0L | None -> [||]
    in
    let shard_bounds s = (s * n_faults / shards, (s + 1) * n_faults / shards) in
    let n_vectors = Array.length vectors in
    let n_blocks = (n_vectors + 63) / 64 in
    for block = 0 to n_blocks - 1 do
      let base = block * 64 in
      let count = min 64 (n_vectors - base) in
      let patterns = Array.sub vectors base count in
      let words = Sim2.words_of_patterns c patterns in
      let good = Sim2.run c words in
      let valid_mask = valid_mask_of count in
      Parallel.run pool ~tasks:shards (fun s ->
          let st = scratches.(s) in
          let lo, hi = shard_bounds s in
          for fi = lo to hi - 1 do
            if live.(fi) then begin
              let dw =
                simulate_fault c st ~is_output ~good ~valid_mask faults.(fi)
              in
              if dw <> 0L then begin
                record_first first_detection fi ~base dw;
                if on_detect <> None then detect_words.(fi) <- dw;
                if drop_detected then live.(fi) <- false
              end
            end
          done);
      match on_detect with
      | Some callback ->
          for fi = 0 to n_faults - 1 do
            if detect_words.(fi) <> 0L then begin
              fire_events callback ~base ~count ~fault_index:fi detect_words.(fi);
              detect_words.(fi) <- 0L
            end
          done
      | None -> ()
    done;
    let gate_evaluations =
      Array.fold_left (fun acc st -> acc + st.gate_evaluations) 0 scratches
    in
    { faults; first_detection; vectors_applied = n_vectors; gate_evaluations;
      stats =
        { Stats.zero with
          gate_evaluations;
          faults_dropped = dropped_of ~drop_detected first_detection } }

  let run_parallel ?(drop_detected = true) ?on_detect ?domains ?pool c ~faults
      ~vectors =
    (* An empty fault universe needs no good-machine simulation at all;
       returning here also keeps [run_in_pool]'s shard clamp >= 1. *)
    if Array.length faults = 0 then
      { faults; first_detection = [||];
        vectors_applied = Array.length vectors; gate_evaluations = 0;
        stats = Stats.zero }
    else
      let dispatch pool =
        if Parallel.size pool = 1 then
          run ~drop_detected ?on_detect c ~faults ~vectors
        else run_in_pool ~drop_detected ~on_detect pool c ~faults ~vectors
      in
      match pool with
      | Some pool -> dispatch pool
      | None ->
          (* A pool wider than the universe is clamped before any domain
             is spawned: the extra workers could never hold a fault, and
             an oversized request would hit the runtime's domain limit. *)
          let domains =
            Option.map (fun d -> max 1 (min d (Array.length faults))) domains
          in
          Parallel.with_pool ?domains dispatch
end

(* --- Flat-kernel engine ----------------------------------------------------

   Same algorithm as [Reference] — PPSFP with level-ordered event-driven
   faulty-value propagation, one shared fault/block code path for the serial
   and parallel drivers — but every per-gate operation is allocation-free:

   - node values live in int64 bigarrays ([Kernel.words]), which the native
     compiler reads, combines and writes without boxing;
   - fanin/fanout adjacency comes from the kernel's CSR int arrays, so no
     fanin [Array.map] per evaluation;
   - the schedule is a set of per-level int-array stacks carved out of one
     flat array by the kernel's [level_off] histogram CSR (capacity per
     level = nodes at that level; the [queued] flags guarantee each node
     occupies at most one slot), replacing consed [int list] buckets;
   - the block's detection word is written into the one-slot [out] bigarray
     rather than returned, because a non-inlined int64 return reboxes.

   Intra-level pop order differs from [Reference] (array stack vs list),
   which is observationally irrelevant: same-level nodes never feed each
   other, every node is popped at most once per fault/block (pushes only
   target levels strictly above the one being drained), and the detection
   word accumulates by logical-or — so detection words, [first_detection]
   and [gate_evaluations] all match the reference bit for bit. *)

type scratch = {
  kernel : Kernel.t;
  queued : bool array;
  bucket : int array;  (* per-level stacks; level l occupies
                          [level_off.(l) .. level_off.(l+1) - 1) *)
  bucket_len : int array;
  mutable cur_level : int;
  mutable remaining : int;
  faulty : Kernel.words;
  touched : bool array;
  touched_ids : int array;
  mutable n_touched : int;
  ins : Kernel.words;  (* gather buffer for the host gate of a branch fault *)
  out : Kernel.words;  (* one slot: detection word of the last simulate_fault *)
  mutable gate_evaluations : int;
  mutable events : int;
  mutable faults_simulated : int;
}

let make_scratch (k : Kernel.t) =
  let max_arity = ref 1 in
  for id = 0 to k.n - 1 do
    let a = k.fanin_off.(id + 1) - k.fanin_off.(id) in
    if a > !max_arity then max_arity := a
  done;
  {
    kernel = k;
    queued = Array.make k.n false;
    bucket = Array.make (max 1 k.n) 0;
    bucket_len = Array.make k.n_levels 0;
    cur_level = 0;
    remaining = 0;
    faulty = Kernel.create_words k;
    touched = Array.make k.n false;
    touched_ids = Array.make (max 1 k.n) 0;
    n_touched = 0;
    ins = Kernel.alloc !max_arity;
    out = Kernel.alloc 1;
    gate_evaluations = 0;
    events = 0;
    faults_simulated = 0;
  }

(* Simulate one fault against one 64-vector block; the detection word lands
   in [st.out.{0}].  Scratch is clean on entry and cleaned before return.
   Single code path for serial and parallel drivers, zero allocation.

   [count] (number of valid vectors in the block) is passed instead of the
   valid-mask word itself: an int64 argument would be reboxed at every call
   site, an immediate int is free, and the mask recomputes unboxed here. *)
let simulate_fault st ~is_output ~(good : Kernel.words) ~count
    (f : Stuck_at.t) =
  let k = st.kernel in
  let valid_mask =
    if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
  in
  let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
  (* The detection word accumulates directly in [st.out.{0}]: a local
     [ref 0L] is not reliably unboxed through this control flow (each
     assignment on the detection path would box), whereas bigarray
     read-modify-write chains stay unboxed. *)
  Bigarray.Array1.unsafe_set st.out 0 0L;
  st.faults_simulated <- st.faults_simulated + 1;
  let seeded = ref false in
  (match f.site with
  | Stuck_at.Stem id ->
      (* A stem fault needs no gate evaluation to seed: the site's faulty
         value IS the stuck word. *)
      let diff =
        Int64.logand
          (Int64.logxor (Bigarray.Array1.unsafe_get good id) stuck_word)
          valid_mask
      in
      if diff <> 0L then begin
        Array.unsafe_set st.touched id true;
        Array.unsafe_set st.touched_ids st.n_touched id;
        st.n_touched <- st.n_touched + 1;
        Bigarray.Array1.unsafe_set st.faulty id stuck_word;
        if Array.unsafe_get is_output id then
          Bigarray.Array1.unsafe_set st.out 0 diff;
        let fo = Array.unsafe_get k.fanout_off id in
        let fe = Array.unsafe_get k.fanout_off (id + 1) in
        for j = fo to fe - 1 do
          let succ = Array.unsafe_get k.fanout j in
          if not (Array.unsafe_get st.queued succ) then begin
            Array.unsafe_set st.queued succ true;
            let l = Array.unsafe_get k.level succ in
            let bl = Array.unsafe_get st.bucket_len l in
            Array.unsafe_set st.bucket (Array.unsafe_get k.level_off l + bl)
              succ;
            Array.unsafe_set st.bucket_len l (bl + 1);
            st.remaining <- st.remaining + 1
          end
        done;
        seeded := true
      end
  | Stuck_at.Branch { gate; pin = _ } ->
      (* A branch fault seeds by scheduling its host gate; the drain loop's
         pin override evaluates it, counting the same single seed gate
         evaluation as the reference engine. *)
      st.queued.(gate) <- true;
      let l = Array.unsafe_get k.level gate in
      let bl = Array.unsafe_get st.bucket_len l in
      Array.unsafe_set st.bucket (Array.unsafe_get k.level_off l + bl) gate;
      Array.unsafe_set st.bucket_len l (bl + 1);
      st.remaining <- st.remaining + 1;
      seeded := true);
  if !seeded then begin
    let fault_gate, fault_pin =
      match f.site with
      | Stuck_at.Branch { gate; pin } -> (gate, pin)
      | Stuck_at.Stem _ -> (-1, -1)
    in
    while st.remaining > 0 do
      while Array.unsafe_get st.bucket_len st.cur_level = 0 do
        st.cur_level <- st.cur_level + 1
      done;
      let l = st.cur_level in
      let bl = Array.unsafe_get st.bucket_len l - 1 in
      Array.unsafe_set st.bucket_len l bl;
      let id = Array.unsafe_get st.bucket (Array.unsafe_get k.level_off l + bl) in
      Array.unsafe_set st.queued id false;
      st.remaining <- st.remaining - 1;
      let off = Array.unsafe_get k.fanin_off id in
      let len = Array.unsafe_get k.fanin_off (id + 1) - off in
      let op = Array.unsafe_get k.opcode id in
      st.gate_evaluations <- st.gate_evaluations + 1;
      st.events <- st.events + 1;
      let v =
        if id <> fault_gate then begin
          (* Common case: faulty-machine evaluation with the touched/good
             overlay, specialized exactly like [Kernel.eval_unsafe]. *)
          if len = 2 then begin
            let s0 = Array.unsafe_get k.fanin off in
            let s1 = Array.unsafe_get k.fanin (off + 1) in
            let a =
              if Array.unsafe_get st.touched s0 then
                Bigarray.Array1.unsafe_get st.faulty s0
              else Bigarray.Array1.unsafe_get good s0
            in
            let b =
              if Array.unsafe_get st.touched s1 then
                Bigarray.Array1.unsafe_get st.faulty s1
              else Bigarray.Array1.unsafe_get good s1
            in
            if op = Gate.op_and then Int64.logand a b
            else if op = Gate.op_nand then Int64.lognot (Int64.logand a b)
            else if op = Gate.op_or then Int64.logor a b
            else if op = Gate.op_nor then Int64.lognot (Int64.logor a b)
            else if op = Gate.op_xor then Int64.logxor a b
            else Int64.lognot (Int64.logxor a b)
          end
          else if len = 1 then begin
            let s0 = Array.unsafe_get k.fanin off in
            let a =
              if Array.unsafe_get st.touched s0 then
                Bigarray.Array1.unsafe_get st.faulty s0
              else Bigarray.Array1.unsafe_get good s0
            in
            if Gate.op_inverts op then Int64.lognot a else a
          end
          else begin
            let last = off + len - 1 in
            if op <= Gate.op_nand then begin
              let s0 = Array.unsafe_get k.fanin off in
              let acc =
                ref
                  (if Array.unsafe_get st.touched s0 then
                     Bigarray.Array1.unsafe_get st.faulty s0
                   else Bigarray.Array1.unsafe_get good s0)
              in
              for j = off + 1 to last do
                let s = Array.unsafe_get k.fanin j in
                acc :=
                  Int64.logand !acc
                    (if Array.unsafe_get st.touched s then
                       Bigarray.Array1.unsafe_get st.faulty s
                     else Bigarray.Array1.unsafe_get good s)
              done;
              if op = Gate.op_nand then Int64.lognot !acc else !acc
            end
            else if op <= Gate.op_nor then begin
              let s0 = Array.unsafe_get k.fanin off in
              let acc =
                ref
                  (if Array.unsafe_get st.touched s0 then
                     Bigarray.Array1.unsafe_get st.faulty s0
                   else Bigarray.Array1.unsafe_get good s0)
              in
              for j = off + 1 to last do
                let s = Array.unsafe_get k.fanin j in
                acc :=
                  Int64.logor !acc
                    (if Array.unsafe_get st.touched s then
                       Bigarray.Array1.unsafe_get st.faulty s
                     else Bigarray.Array1.unsafe_get good s)
              done;
              if op = Gate.op_nor then Int64.lognot !acc else !acc
            end
            else begin
              let s0 = Array.unsafe_get k.fanin off in
              let acc =
                ref
                  (if Array.unsafe_get st.touched s0 then
                     Bigarray.Array1.unsafe_get st.faulty s0
                   else Bigarray.Array1.unsafe_get good s0)
              in
              for j = off + 1 to last do
                let s = Array.unsafe_get k.fanin j in
                acc :=
                  Int64.logxor !acc
                    (if Array.unsafe_get st.touched s then
                       Bigarray.Array1.unsafe_get st.faulty s
                     else Bigarray.Array1.unsafe_get good s)
              done;
              if op = Gate.op_xnor then Int64.lognot !acc else !acc
            end
          end
        end
        else begin
          (* Host gate of a branch fault (at most once per fault/block):
             gather pins into the scratch buffer, force the faulty pin,
             fold.  Gathering keeps the pin override off the common path. *)
          for j = 0 to len - 1 do
            let s = Array.unsafe_get k.fanin (off + j) in
            Bigarray.Array1.unsafe_set st.ins j
              (if Array.unsafe_get st.touched s then
                 Bigarray.Array1.unsafe_get st.faulty s
               else Bigarray.Array1.unsafe_get good s)
          done;
          Bigarray.Array1.unsafe_set st.ins fault_pin stuck_word;
          if len = 1 then begin
            let a = Bigarray.Array1.unsafe_get st.ins 0 in
            if Gate.op_inverts op then Int64.lognot a else a
          end
          else if op <= Gate.op_nand then begin
            let acc = ref (Bigarray.Array1.unsafe_get st.ins 0) in
            for j = 1 to len - 1 do
              acc := Int64.logand !acc (Bigarray.Array1.unsafe_get st.ins j)
            done;
            if op = Gate.op_nand then Int64.lognot !acc else !acc
          end
          else if op <= Gate.op_nor then begin
            let acc = ref (Bigarray.Array1.unsafe_get st.ins 0) in
            for j = 1 to len - 1 do
              acc := Int64.logor !acc (Bigarray.Array1.unsafe_get st.ins j)
            done;
            if op = Gate.op_nor then Int64.lognot !acc else !acc
          end
          else begin
            let acc = ref (Bigarray.Array1.unsafe_get st.ins 0) in
            for j = 1 to len - 1 do
              acc := Int64.logxor !acc (Bigarray.Array1.unsafe_get st.ins j)
            done;
            if op = Gate.op_xnor then Int64.lognot !acc else !acc
          end
        end
      in
      let diff =
        Int64.logand
          (Int64.logxor (Bigarray.Array1.unsafe_get good id) v)
          valid_mask
      in
      if diff <> 0L || Array.unsafe_get st.touched id then begin
        if not (Array.unsafe_get st.touched id) then begin
          Array.unsafe_set st.touched id true;
          Array.unsafe_set st.touched_ids st.n_touched id;
          st.n_touched <- st.n_touched + 1
        end;
        Bigarray.Array1.unsafe_set st.faulty id v;
        if diff <> 0L then begin
          if Array.unsafe_get is_output id then
            Bigarray.Array1.unsafe_set st.out 0
              (Int64.logor (Bigarray.Array1.unsafe_get st.out 0) diff);
          let fo = Array.unsafe_get k.fanout_off id in
          let fe = Array.unsafe_get k.fanout_off (id + 1) in
          for j = fo to fe - 1 do
            let succ = Array.unsafe_get k.fanout j in
            if not (Array.unsafe_get st.queued succ) then begin
              Array.unsafe_set st.queued succ true;
              let sl = Array.unsafe_get k.level succ in
              let sbl = Array.unsafe_get st.bucket_len sl in
              Array.unsafe_set st.bucket
                (Array.unsafe_get k.level_off sl + sbl)
                succ;
              Array.unsafe_set st.bucket_len sl (sbl + 1);
              st.remaining <- st.remaining + 1
            end
          done
        end
      end
    done;
    for i = 0 to st.n_touched - 1 do
      Array.unsafe_set st.touched (Array.unsafe_get st.touched_ids i) false
    done;
    st.n_touched <- 0;
    st.cur_level <- 0
  end

let run ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let st = make_scratch k in
  let is_output = output_map c in
  let good = Kernel.create_words k in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    Sim2.load_patterns k good vectors ~base ~count;
    Sim2.run_flat k good;
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        simulate_fault st ~is_output ~good ~count faults.(fi);
        (* Unboxed compare; the detection word is only (re)boxed inside the
           branches that genuinely need it as a value — first detection of a
           fault, or event replay — so the steady-state no-drop loop stays
           allocation-free. *)
        if Bigarray.Array1.unsafe_get st.out 0 <> 0L then begin
          (match first_detection.(fi) with
          | None ->
              record_first first_detection fi ~base
                (Bigarray.Array1.unsafe_get st.out 0)
          | Some _ -> ());
          (match on_detect with
          | Some callback ->
              fire_events callback ~base ~count ~fault_index:fi
                (Bigarray.Array1.unsafe_get st.out 0)
          | None -> ());
          if drop_detected then live.(fi) <- false
        end
      end
    done
  done;
  {
    faults;
    first_detection;
    vectors_applied = n_vectors;
    gate_evaluations = st.gate_evaluations;
    stats =
      { Stats.zero with
        gate_evaluations = st.gate_evaluations;
        events = st.events;
        faults_simulated = st.faults_simulated;
        faults_dropped = dropped_of ~drop_detected first_detection };
  }

(* Parallel driver: the fault array is cut into [size pool] contiguous
   shards, fixed for the whole run, and every worker keeps its own scratch
   while the kernel and each block's good-machine words are shared
   read-only.  Each fault index is written (first_detection, live and the
   per-block detection word) only by its owning worker, and the pool's job
   barrier orders those writes before the merge below reads them, so the
   result is deterministic and equal to the serial engine's: per-fault
   outcomes do not depend on simulation order, gate-evaluation counts sum
   to the same total, and buffered [on_detect] events are replayed in
   fault-index order within each block — exactly the serial firing order. *)
let run_in_pool ~drop_detected ~on_detect pool (c : Circuit.t) ~faults ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  (* See [Reference.run_in_pool]: empty shards would only waste O(nodes)
     scratch allocations; the clamp is result-invariant. *)
  let shards = min (Parallel.size pool) n_faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let is_output = output_map c in
  let scratches = Array.init shards (fun _ -> make_scratch k) in
  let good = Kernel.create_words k in
  (* Per-fault detection word of the current block, kept only when events
     must be replayed to a callback. *)
  let detect_words =
    match on_detect with Some _ -> Array.make n_faults 0L | None -> [||]
  in
  let shard_bounds s = (s * n_faults / shards, (s + 1) * n_faults / shards) in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    Sim2.load_patterns k good vectors ~base ~count;
    Sim2.run_flat k good;
    let has_callback = match on_detect with Some _ -> true | None -> false in
    Parallel.run pool ~tasks:shards (fun s ->
        let st = scratches.(s) in
        let lo, hi = shard_bounds s in
        for fi = lo to hi - 1 do
          if live.(fi) then begin
            simulate_fault st ~is_output ~good ~count faults.(fi);
            if Bigarray.Array1.unsafe_get st.out 0 <> 0L then begin
              (match first_detection.(fi) with
              | None ->
                  record_first first_detection fi ~base
                    (Bigarray.Array1.unsafe_get st.out 0)
              | Some _ -> ());
              if has_callback then
                detect_words.(fi) <- Bigarray.Array1.unsafe_get st.out 0;
              if drop_detected then live.(fi) <- false
            end
          end
        done);
    match on_detect with
    | Some callback ->
        for fi = 0 to n_faults - 1 do
          if detect_words.(fi) <> 0L then begin
            fire_events callback ~base ~count ~fault_index:fi detect_words.(fi);
            detect_words.(fi) <- 0L
          end
        done
    | None -> ()
  done;
  let gate_evaluations =
    Array.fold_left (fun acc st -> acc + st.gate_evaluations) 0 scratches
  in
  { faults; first_detection; vectors_applied = n_vectors; gate_evaluations;
    stats =
      { Stats.zero with
        gate_evaluations;
        events = Array.fold_left (fun a st -> a + st.events) 0 scratches;
        faults_simulated =
          Array.fold_left (fun a st -> a + st.faults_simulated) 0 scratches;
        faults_dropped = dropped_of ~drop_detected first_detection } }

let run_parallel ?(drop_detected = true) ?on_detect ?domains ?pool c ~faults
    ~vectors =
  if Array.length faults = 0 then
    { faults; first_detection = [||];
      vectors_applied = Array.length vectors; gate_evaluations = 0;
      stats = Stats.zero }
  else
    let dispatch pool =
      if Parallel.size pool = 1 then run ~drop_detected ?on_detect c ~faults ~vectors
      else run_in_pool ~drop_detected ~on_detect pool c ~faults ~vectors
    in
    match pool with
    | Some pool -> dispatch pool
    | None ->
        (* See [Reference.run_parallel]: never spawn more domains than
           faults. *)
        let domains =
          Option.map (fun d -> max 1 (min d (Array.length faults))) domains
        in
        Parallel.with_pool ?domains dispatch

(* --- Event / Pruned / Wide engines -----------------------------------------

   Three composable optimizations over the flat kernel, selected through
   {!engine} (the [Flat] paths above are kept verbatim as the
   gate-evaluation-count-compatible production baseline):

   [Event] — resident-faulty incremental simulation.  The faulty buffer is
   a persistent copy of the good-machine words (one blit per block); each
   fault perturbs only its disturbed cone and the touched nodes are
   restored afterwards, so the hot loop reads fanins unconditionally
   instead of through the flat engine's per-fanin touched/good overlay
   branch.  Scheduling decisions are identical to [Flat] (a popped node
   writes and propagates iff its masked diff against good is non-zero,
   which is exactly the overlay engine's condition, since a node is popped
   at most once per fault and its resident value before the write is the
   good value), so detection words, event counts and gate-evaluation
   counts all match the flat and reference engines bit for bit.

   [Pruned] — fanout-free-region inference on top of [Event].  Faults are
   never simulated individually: for each FFR stem hosting a live fault,
   one toggle simulation (faulty stem = complement of good) yields the
   stem's observability word — the patterns on which flipping the stem
   reaches a primary output.  Each fault is then decided by critical-path
   tracing inside its region: the local fault effect is walked along the
   unique single-fanout chain to the stem, one boolean-difference gate
   evaluation per step (side inputs carry good values — exact, because an
   FFR contains no reconvergence), and the detection word is the traced
   difference AND the stem's observability.  Per lane, the faulty machine
   below the stem equals the toggle machine whenever the traced difference
   reaches the stem, so this equals explicit simulation bit for bit.

   [Wide] — [Pruned] over 4x64-pattern blocks: good machine via
   [Sim2.run_flat4], toggle propagation and tracing on 4-word values
   (node [i] at words [4i..4i+3]), amortizing every CSR fetch over 256
   patterns.  Detection handling stays block-sequential (a dropped fault
   reports only its first detecting 64-pattern sub-word), so results are
   identical to the 64-bit engines. *)

type escratch = {
  kernel : Kernel.t;
  queued : bool array;
  bucket : int array;
  bucket_len : int array;
  mutable cur_level : int;
  mutable remaining : int;
  faulty : Kernel.words;  (* resident good copy, perturbed and restored *)
  touched_ids : int array;
  mutable n_touched : int;
  ins : Kernel.words;  (* pin-gather buffer (host gate override, tracing) *)
  out : Kernel.words;
      (* slots 0..3: detection/difference words; 4..7: gather-fold results.
         The 64-bit paths use slots 0 and 4 only. *)
  vmask : Kernel.words;
      (* per-sub-word valid masks of the current block (wide path), cached
         here once per block so the hot functions read them unboxed instead
         of recomputing int64s across call boundaries *)
  mutable gate_evaluations : int;
  mutable events : int;
  mutable faults_simulated : int;
  mutable stem_simulations : int;
  mutable faults_inferred : int;
}

let make_escratch ?(wide = false) (k : Kernel.t) =
  let max_arity = ref 1 in
  for id = 0 to k.n - 1 do
    let a = k.fanin_off.(id + 1) - k.fanin_off.(id) in
    if a > !max_arity then max_arity := a
  done;
  let width = if wide then 4 else 1 in
  {
    kernel = k;
    queued = Array.make k.n false;
    bucket = Array.make (max 1 k.n) 0;
    bucket_len = Array.make k.n_levels 0;
    cur_level = 0;
    remaining = 0;
    faulty = Kernel.alloc (width * k.n);
    touched_ids = Array.make (max 1 k.n) 0;
    n_touched = 0;
    ins = Kernel.alloc (width * !max_arity);
    out = Kernel.alloc 8;
    vmask = Kernel.alloc 4;
    gate_evaluations = 0;
    events = 0;
    faults_simulated = 0;
    stem_simulations = 0;
    faults_inferred = 0;
  }

(* Re-arm the resident faulty buffer for a new block's good values.  The
   per-fault cleanups below restore every touched node, so this is the only
   full-buffer copy per (scratch, block). *)
let resident_reset st (good : Kernel.words) =
  Bigarray.Array1.blit good st.faulty

let[@inline] push_fanouts st id =
  let k = st.kernel in
  let fo = Array.unsafe_get k.fanout_off id in
  let fe = Array.unsafe_get k.fanout_off (id + 1) in
  for j = fo to fe - 1 do
    let succ = Array.unsafe_get k.fanout j in
    if not (Array.unsafe_get st.queued succ) then begin
      Array.unsafe_set st.queued succ true;
      let l = Array.unsafe_get k.level succ in
      let bl = Array.unsafe_get st.bucket_len l in
      Array.unsafe_set st.bucket (Array.unsafe_get k.level_off l + bl) succ;
      Array.unsafe_set st.bucket_len l (bl + 1);
      st.remaining <- st.remaining + 1
    end
  done

let[@inline] touch st id =
  Array.unsafe_set st.touched_ids st.n_touched id;
  st.n_touched <- st.n_touched + 1

(* Fold the gathered pin words [st.ins.{0..len-1}] under opcode [op] into
   [st.out.{4}].  Writing to the scratch slot instead of returning keeps the
   int64 unboxed across the non-inlined call. *)
let fold_ins st len op =
  let v =
    if len = 1 then begin
      let a = Bigarray.Array1.unsafe_get st.ins 0 in
      if Gate.op_inverts op then Int64.lognot a else a
    end
    else if op <= Gate.op_nand then begin
      let acc = ref (Bigarray.Array1.unsafe_get st.ins 0) in
      for j = 1 to len - 1 do
        acc := Int64.logand !acc (Bigarray.Array1.unsafe_get st.ins j)
      done;
      if op = Gate.op_nand then Int64.lognot !acc else !acc
    end
    else if op <= Gate.op_nor then begin
      let acc = ref (Bigarray.Array1.unsafe_get st.ins 0) in
      for j = 1 to len - 1 do
        acc := Int64.logor !acc (Bigarray.Array1.unsafe_get st.ins j)
      done;
      if op = Gate.op_nor then Int64.lognot !acc else !acc
    end
    else begin
      let acc = ref (Bigarray.Array1.unsafe_get st.ins 0) in
      for j = 1 to len - 1 do
        acc := Int64.logxor !acc (Bigarray.Array1.unsafe_get st.ins j)
      done;
      if op = Gate.op_xnor then Int64.lognot !acc else !acc
    end
  in
  Bigarray.Array1.unsafe_set st.out 4 v

(* 4-word [fold_ins]: pins gathered at [st.ins.{4j..4j+3}], results written
   to [st.out.{4..7}]. *)
let fold_ins4 st len op =
  for w = 0 to 3 do
    let v =
      if len = 1 then begin
        let a = Bigarray.Array1.unsafe_get st.ins w in
        if Gate.op_inverts op then Int64.lognot a else a
      end
      else if op <= Gate.op_nand then begin
        let acc = ref (Bigarray.Array1.unsafe_get st.ins w) in
        for j = 1 to len - 1 do
          acc :=
            Int64.logand !acc (Bigarray.Array1.unsafe_get st.ins ((j * 4) + w))
        done;
        if op = Gate.op_nand then Int64.lognot !acc else !acc
      end
      else if op <= Gate.op_nor then begin
        let acc = ref (Bigarray.Array1.unsafe_get st.ins w) in
        for j = 1 to len - 1 do
          acc :=
            Int64.logor !acc (Bigarray.Array1.unsafe_get st.ins ((j * 4) + w))
        done;
        if op = Gate.op_nor then Int64.lognot !acc else !acc
      end
      else begin
        let acc = ref (Bigarray.Array1.unsafe_get st.ins w) in
        for j = 1 to len - 1 do
          acc :=
            Int64.logxor !acc (Bigarray.Array1.unsafe_get st.ins ((j * 4) + w))
        done;
        if op = Gate.op_xnor then Int64.lognot !acc else !acc
      end
    in
    Bigarray.Array1.unsafe_set st.out (4 + w) v
  done

(* Level-ordered drain of the event worklist against the resident faulty
   buffer.  The masked-diff accumulation goes to [st.out.{0}]; [fault_gate]
   (or -1) forces [fault_pin] to [stuck_word] on its own evaluation, exactly
   like the flat engine's gather path.  The frontier dies on its own when
   every evaluated node's masked diff is zero — the "all lanes converge"
   early exit: a node whose value equals the resident (= good) value is
   neither written nor propagated. *)
let drain_event st ~is_output ~(good : Kernel.words) ~count ~fault_gate
    ~fault_pin ~stuck_word =
  let k = st.kernel in
  let valid_mask =
    if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
  in
  while st.remaining > 0 do
    while Array.unsafe_get st.bucket_len st.cur_level = 0 do
      st.cur_level <- st.cur_level + 1
    done;
    let l = st.cur_level in
    let bl = Array.unsafe_get st.bucket_len l - 1 in
    Array.unsafe_set st.bucket_len l bl;
    let id = Array.unsafe_get st.bucket (Array.unsafe_get k.level_off l + bl) in
    Array.unsafe_set st.queued id false;
    st.remaining <- st.remaining - 1;
    let off = Array.unsafe_get k.fanin_off id in
    let len = Array.unsafe_get k.fanin_off (id + 1) - off in
    let op = Array.unsafe_get k.opcode id in
    st.gate_evaluations <- st.gate_evaluations + 1;
    st.events <- st.events + 1;
    let v =
      if id <> fault_gate then begin
        (* Unconditional resident reads: the overlay branch of the flat
           engine is gone, which is the point of this engine. *)
        if len = 2 then begin
          let a =
            Bigarray.Array1.unsafe_get st.faulty (Array.unsafe_get k.fanin off)
          in
          let b =
            Bigarray.Array1.unsafe_get st.faulty
              (Array.unsafe_get k.fanin (off + 1))
          in
          if op = Gate.op_and then Int64.logand a b
          else if op = Gate.op_nand then Int64.lognot (Int64.logand a b)
          else if op = Gate.op_or then Int64.logor a b
          else if op = Gate.op_nor then Int64.lognot (Int64.logor a b)
          else if op = Gate.op_xor then Int64.logxor a b
          else Int64.lognot (Int64.logxor a b)
        end
        else if len = 1 then begin
          let a =
            Bigarray.Array1.unsafe_get st.faulty (Array.unsafe_get k.fanin off)
          in
          if Gate.op_inverts op then Int64.lognot a else a
        end
        else begin
          let last = off + len - 1 in
          if op <= Gate.op_nand then begin
            let acc =
              ref
                (Bigarray.Array1.unsafe_get st.faulty
                   (Array.unsafe_get k.fanin off))
            in
            for j = off + 1 to last do
              acc :=
                Int64.logand !acc
                  (Bigarray.Array1.unsafe_get st.faulty
                     (Array.unsafe_get k.fanin j))
            done;
            if op = Gate.op_nand then Int64.lognot !acc else !acc
          end
          else if op <= Gate.op_nor then begin
            let acc =
              ref
                (Bigarray.Array1.unsafe_get st.faulty
                   (Array.unsafe_get k.fanin off))
            in
            for j = off + 1 to last do
              acc :=
                Int64.logor !acc
                  (Bigarray.Array1.unsafe_get st.faulty
                     (Array.unsafe_get k.fanin j))
            done;
            if op = Gate.op_nor then Int64.lognot !acc else !acc
          end
          else begin
            let acc =
              ref
                (Bigarray.Array1.unsafe_get st.faulty
                   (Array.unsafe_get k.fanin off))
            in
            for j = off + 1 to last do
              acc :=
                Int64.logxor !acc
                  (Bigarray.Array1.unsafe_get st.faulty
                     (Array.unsafe_get k.fanin j))
            done;
            if op = Gate.op_xnor then Int64.lognot !acc else !acc
          end
        end
      end
      else begin
        for j = 0 to len - 1 do
          Bigarray.Array1.unsafe_set st.ins j
            (Bigarray.Array1.unsafe_get st.faulty
               (Array.unsafe_get k.fanin (off + j)))
        done;
        Bigarray.Array1.unsafe_set st.ins fault_pin stuck_word;
        fold_ins st len op;
        Bigarray.Array1.unsafe_get st.out 4
      end
    in
    let diff =
      Int64.logand
        (Int64.logxor (Bigarray.Array1.unsafe_get good id) v)
        valid_mask
    in
    if diff <> 0L then begin
      Bigarray.Array1.unsafe_set st.faulty id v;
      touch st id;
      if Array.unsafe_get is_output id then
        Bigarray.Array1.unsafe_set st.out 0
          (Int64.logor (Bigarray.Array1.unsafe_get st.out 0) diff);
      push_fanouts st id
    end
  done

(* Restore the resident buffer to the good values (64-bit paths). *)
let event_cleanup st (good : Kernel.words) =
  for i = 0 to st.n_touched - 1 do
    let id = Array.unsafe_get st.touched_ids i in
    Bigarray.Array1.unsafe_set st.faulty id (Bigarray.Array1.unsafe_get good id)
  done;
  st.n_touched <- 0;
  st.cur_level <- 0

(* One fault against one block on the resident-faulty engine; detection word
   in [st.out.{0}].  Decision-identical to the flat engine's
   [simulate_fault]. *)
let simulate_fault_event st ~is_output ~(good : Kernel.words) ~count
    (f : Stuck_at.t) =
  let valid_mask =
    if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
  in
  let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
  Bigarray.Array1.unsafe_set st.out 0 0L;
  st.faults_simulated <- st.faults_simulated + 1;
  let fault_gate, fault_pin, seeded =
    match f.site with
    | Stuck_at.Stem id ->
        let diff =
          Int64.logand
            (Int64.logxor (Bigarray.Array1.unsafe_get good id) stuck_word)
            valid_mask
        in
        if diff = 0L then (-1, -1, false)
        else begin
          Bigarray.Array1.unsafe_set st.faulty id stuck_word;
          touch st id;
          if Array.unsafe_get is_output id then
            Bigarray.Array1.unsafe_set st.out 0 diff;
          push_fanouts st id;
          (-1, -1, true)
        end
    | Stuck_at.Branch { gate; pin } ->
        st.queued.(gate) <- true;
        let k = st.kernel in
        let l = Array.unsafe_get k.level gate in
        let bl = Array.unsafe_get st.bucket_len l in
        Array.unsafe_set st.bucket (Array.unsafe_get k.level_off l + bl) gate;
        Array.unsafe_set st.bucket_len l (bl + 1);
        st.remaining <- st.remaining + 1;
        (gate, pin, true)
  in
  if seeded then begin
    drain_event st ~is_output ~good ~count ~fault_gate ~fault_pin ~stuck_word;
    event_cleanup st good
  end

(* Stem-toggle observability: simulate the stem forced to the complement of
   its good value; the accumulated detection word is exactly the set of
   patterns on which flipping the stem is observable at a primary output. *)
let simulate_toggle st ~is_output ~(good : Kernel.words) ~count stem =
  let valid_mask =
    if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
  in
  st.stem_simulations <- st.stem_simulations + 1;
  Bigarray.Array1.unsafe_set st.out 0
    (if Array.unsafe_get is_output stem then valid_mask else 0L);
  Bigarray.Array1.unsafe_set st.faulty stem
    (Int64.lognot (Bigarray.Array1.unsafe_get good stem));
  touch st stem;
  push_fanouts st stem;
  drain_event st ~is_output ~good ~count ~fault_gate:(-1) ~fault_pin:(-1)
    ~stuck_word:0L;
  event_cleanup st good

let site_node (f : Stuck_at.t) =
  match f.site with Stuck_at.Stem id -> id | Stuck_at.Branch { gate; _ } -> gate

(* Critical-path trace of one fault to its FFR stem: seed the local fault
   effect, then walk the unique single-fanout chain, ANDing in each gate's
   boolean difference with respect to the incoming line (one substituted
   gate evaluation per step — exact inside an FFR, where side inputs always
   carry good values).  The traced difference word lands in [st.out.{0}];
   the caller ANDs it with the stem's observability word. *)
let trace_fault st ~(good : Kernel.words) ~count (f : Stuck_at.t) =
  let k = st.kernel in
  let valid_mask =
    if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
  in
  let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
  let cur = ref 0 in
  (match f.site with
  | Stuck_at.Stem id ->
      Bigarray.Array1.unsafe_set st.out 0
        (Int64.logand
           (Int64.logxor (Bigarray.Array1.unsafe_get good id) stuck_word)
           valid_mask);
      cur := id
  | Stuck_at.Branch { gate; pin } ->
      let off = Array.unsafe_get k.fanin_off gate in
      let len = Array.unsafe_get k.fanin_off (gate + 1) - off in
      for j = 0 to len - 1 do
        Bigarray.Array1.unsafe_set st.ins j
          (Bigarray.Array1.unsafe_get good (Array.unsafe_get k.fanin (off + j)))
      done;
      Bigarray.Array1.unsafe_set st.ins pin stuck_word;
      st.gate_evaluations <- st.gate_evaluations + 1;
      fold_ins st len (Array.unsafe_get k.opcode gate);
      Bigarray.Array1.unsafe_set st.out 0
        (Int64.logand
           (Int64.logxor
              (Bigarray.Array1.unsafe_get good gate)
              (Bigarray.Array1.unsafe_get st.out 4))
           valid_mask);
      cur := gate);
  while
    Bigarray.Array1.unsafe_get st.out 0 <> 0L
    && Array.unsafe_get k.ffr_stem !cur <> !cur
  do
    let nxt = Array.unsafe_get k.fanout (Array.unsafe_get k.fanout_off !cur) in
    let off = Array.unsafe_get k.fanin_off nxt in
    let len = Array.unsafe_get k.fanin_off (nxt + 1) - off in
    for j = 0 to len - 1 do
      let s = Array.unsafe_get k.fanin (off + j) in
      let w = Bigarray.Array1.unsafe_get good s in
      Bigarray.Array1.unsafe_set st.ins j
        (if s = !cur then Int64.lognot w else w)
    done;
    st.gate_evaluations <- st.gate_evaluations + 1;
    fold_ins st len (Array.unsafe_get k.opcode nxt);
    Bigarray.Array1.unsafe_set st.out 0
      (Int64.logand
         (Bigarray.Array1.unsafe_get st.out 0)
         (Int64.logxor
            (Bigarray.Array1.unsafe_get good nxt)
            (Bigarray.Array1.unsafe_get st.out 4)));
    cur := nxt
  done

(* --- wide (4-word) toggle and trace ------------------------------------- *)

let[@inline] sub_count ~count w =
  let c = count - (w * 64) in
  if c <= 0 then 0 else if c >= 64 then 64 else c

let sub_mask ~count w =
  let c = count - (w * 64) in
  if c <= 0 then 0L
  else if c >= 64 then -1L
  else Int64.sub (Int64.shift_left 1L c) 1L

(* Cache the block's four valid masks in scratch (once per block per
   scratch; the boxed [sub_mask] returns are off the per-fault path). *)
let set_vmasks st ~count =
  for w = 0 to 3 do
    Bigarray.Array1.unsafe_set st.vmask w (sub_mask ~count w)
  done

(* 4-word stem-toggle: diff words accumulate in [st.out.{0..3}], one per
   64-pattern sub-word of the 256-pattern block. *)
let simulate_toggle4 st ~is_output ~(good : Kernel.words) stem =
  let k = st.kernel in
  st.stem_simulations <- st.stem_simulations + 1;
  let po = Array.unsafe_get is_output stem in
  for w = 0 to 3 do
    Bigarray.Array1.unsafe_set st.out w
      (if po then Bigarray.Array1.unsafe_get st.vmask w else 0L)
  done;
  let s4 = stem * 4 in
  for w = 0 to 3 do
    Bigarray.Array1.unsafe_set st.faulty (s4 + w)
      (Int64.lognot (Bigarray.Array1.unsafe_get good (s4 + w)))
  done;
  touch st stem;
  push_fanouts st stem;
  while st.remaining > 0 do
    while Array.unsafe_get st.bucket_len st.cur_level = 0 do
      st.cur_level <- st.cur_level + 1
    done;
    let l = st.cur_level in
    let bl = Array.unsafe_get st.bucket_len l - 1 in
    Array.unsafe_set st.bucket_len l bl;
    let id = Array.unsafe_get st.bucket (Array.unsafe_get k.level_off l + bl) in
    Array.unsafe_set st.queued id false;
    st.remaining <- st.remaining - 1;
    let off = Array.unsafe_get k.fanin_off id in
    let len = Array.unsafe_get k.fanin_off (id + 1) - off in
    let op = Array.unsafe_get k.opcode id in
    st.gate_evaluations <- st.gate_evaluations + 4;
    st.events <- st.events + 1;
    (* Evaluate the gate's four words from the resident buffer into
       [st.out.{4..7}]. *)
    if len = 2 then begin
      let a4 = Array.unsafe_get k.fanin off * 4 in
      let b4 = Array.unsafe_get k.fanin (off + 1) * 4 in
      for w = 0 to 3 do
        let a = Bigarray.Array1.unsafe_get st.faulty (a4 + w) in
        let b = Bigarray.Array1.unsafe_get st.faulty (b4 + w) in
        let v =
          if op = Gate.op_and then Int64.logand a b
          else if op = Gate.op_nand then Int64.lognot (Int64.logand a b)
          else if op = Gate.op_or then Int64.logor a b
          else if op = Gate.op_nor then Int64.lognot (Int64.logor a b)
          else if op = Gate.op_xor then Int64.logxor a b
          else Int64.lognot (Int64.logxor a b)
        in
        Bigarray.Array1.unsafe_set st.out (4 + w) v
      done
    end
    else if len = 1 then begin
      let a4 = Array.unsafe_get k.fanin off * 4 in
      let inv = Gate.op_inverts op in
      for w = 0 to 3 do
        let a = Bigarray.Array1.unsafe_get st.faulty (a4 + w) in
        Bigarray.Array1.unsafe_set st.out (4 + w)
          (if inv then Int64.lognot a else a)
      done
    end
    else begin
      let last = off + len - 1 in
      for w = 0 to 3 do
        let s0 = Array.unsafe_get k.fanin off * 4 in
        let v =
          if op <= Gate.op_nand then begin
            let acc = ref (Bigarray.Array1.unsafe_get st.faulty (s0 + w)) in
            for j = off + 1 to last do
              acc :=
                Int64.logand !acc
                  (Bigarray.Array1.unsafe_get st.faulty
                     ((Array.unsafe_get k.fanin j * 4) + w))
            done;
            if op = Gate.op_nand then Int64.lognot !acc else !acc
          end
          else if op <= Gate.op_nor then begin
            let acc = ref (Bigarray.Array1.unsafe_get st.faulty (s0 + w)) in
            for j = off + 1 to last do
              acc :=
                Int64.logor !acc
                  (Bigarray.Array1.unsafe_get st.faulty
                     ((Array.unsafe_get k.fanin j * 4) + w))
            done;
            if op = Gate.op_nor then Int64.lognot !acc else !acc
          end
          else begin
            let acc = ref (Bigarray.Array1.unsafe_get st.faulty (s0 + w)) in
            for j = off + 1 to last do
              acc :=
                Int64.logxor !acc
                  (Bigarray.Array1.unsafe_get st.faulty
                     ((Array.unsafe_get k.fanin j * 4) + w))
            done;
            if op = Gate.op_xnor then Int64.lognot !acc else !acc
          end
        in
        Bigarray.Array1.unsafe_set st.out (4 + w) v
      done
    end;
    let o4 = id * 4 in
    let d0 =
      Int64.logand
        (Int64.logxor
           (Bigarray.Array1.unsafe_get good o4)
           (Bigarray.Array1.unsafe_get st.out 4))
        (Bigarray.Array1.unsafe_get st.vmask 0)
    in
    let d1 =
      Int64.logand
        (Int64.logxor
           (Bigarray.Array1.unsafe_get good (o4 + 1))
           (Bigarray.Array1.unsafe_get st.out 5))
        (Bigarray.Array1.unsafe_get st.vmask 1)
    in
    let d2 =
      Int64.logand
        (Int64.logxor
           (Bigarray.Array1.unsafe_get good (o4 + 2))
           (Bigarray.Array1.unsafe_get st.out 6))
        (Bigarray.Array1.unsafe_get st.vmask 2)
    in
    let d3 =
      Int64.logand
        (Int64.logxor
           (Bigarray.Array1.unsafe_get good (o4 + 3))
           (Bigarray.Array1.unsafe_get st.out 7))
        (Bigarray.Array1.unsafe_get st.vmask 3)
    in
    if
      Int64.logor (Int64.logor d0 d1) (Int64.logor d2 d3) <> 0L
    then begin
      for w = 0 to 3 do
        Bigarray.Array1.unsafe_set st.faulty (o4 + w)
          (Bigarray.Array1.unsafe_get st.out (4 + w))
      done;
      touch st id;
      if Array.unsafe_get is_output id then begin
        Bigarray.Array1.unsafe_set st.out 0
          (Int64.logor (Bigarray.Array1.unsafe_get st.out 0) d0);
        Bigarray.Array1.unsafe_set st.out 1
          (Int64.logor (Bigarray.Array1.unsafe_get st.out 1) d1);
        Bigarray.Array1.unsafe_set st.out 2
          (Int64.logor (Bigarray.Array1.unsafe_get st.out 2) d2);
        Bigarray.Array1.unsafe_set st.out 3
          (Int64.logor (Bigarray.Array1.unsafe_get st.out 3) d3)
      end;
      push_fanouts st id
    end
  done;
  (* restore the four words of every touched node *)
  for i = 0 to st.n_touched - 1 do
    let id4 = Array.unsafe_get st.touched_ids i * 4 in
    for w = 0 to 3 do
      Bigarray.Array1.unsafe_set st.faulty (id4 + w)
        (Bigarray.Array1.unsafe_get good (id4 + w))
    done
  done;
  st.n_touched <- 0;
  st.cur_level <- 0

(* 4-word critical-path trace; difference words land in [st.out.{0..3}]. *)
let trace_fault4 st ~(good : Kernel.words) (f : Stuck_at.t) =
  let k = st.kernel in
  let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
  let cur = ref 0 in
  (match f.site with
  | Stuck_at.Stem id ->
      let i4 = id * 4 in
      for w = 0 to 3 do
        Bigarray.Array1.unsafe_set st.out w
          (Int64.logand
             (Int64.logxor
                (Bigarray.Array1.unsafe_get good (i4 + w))
                stuck_word)
             (Bigarray.Array1.unsafe_get st.vmask w))
      done;
      cur := id
  | Stuck_at.Branch { gate; pin } ->
      let off = Array.unsafe_get k.fanin_off gate in
      let len = Array.unsafe_get k.fanin_off (gate + 1) - off in
      for j = 0 to len - 1 do
        let s4 = Array.unsafe_get k.fanin (off + j) * 4 in
        for w = 0 to 3 do
          Bigarray.Array1.unsafe_set st.ins ((j * 4) + w)
            (Bigarray.Array1.unsafe_get good (s4 + w))
        done
      done;
      for w = 0 to 3 do
        Bigarray.Array1.unsafe_set st.ins ((pin * 4) + w) stuck_word
      done;
      st.gate_evaluations <- st.gate_evaluations + 4;
      fold_ins4 st len (Array.unsafe_get k.opcode gate);
      let g4 = gate * 4 in
      for w = 0 to 3 do
        Bigarray.Array1.unsafe_set st.out w
          (Int64.logand
             (Int64.logxor
                (Bigarray.Array1.unsafe_get good (g4 + w))
                (Bigarray.Array1.unsafe_get st.out (4 + w)))
             (Bigarray.Array1.unsafe_get st.vmask w))
      done;
      cur := gate);
  while
    Int64.logor
      (Int64.logor
         (Bigarray.Array1.unsafe_get st.out 0)
         (Bigarray.Array1.unsafe_get st.out 1))
      (Int64.logor
         (Bigarray.Array1.unsafe_get st.out 2)
         (Bigarray.Array1.unsafe_get st.out 3))
    <> 0L
    && Array.unsafe_get k.ffr_stem !cur <> !cur
  do
    let nxt = Array.unsafe_get k.fanout (Array.unsafe_get k.fanout_off !cur) in
    let off = Array.unsafe_get k.fanin_off nxt in
    let len = Array.unsafe_get k.fanin_off (nxt + 1) - off in
    for j = 0 to len - 1 do
      let s = Array.unsafe_get k.fanin (off + j) in
      let s4 = s * 4 in
      if s = !cur then
        for w = 0 to 3 do
          Bigarray.Array1.unsafe_set st.ins ((j * 4) + w)
            (Int64.lognot (Bigarray.Array1.unsafe_get good (s4 + w)))
        done
      else
        for w = 0 to 3 do
          Bigarray.Array1.unsafe_set st.ins ((j * 4) + w)
            (Bigarray.Array1.unsafe_get good (s4 + w))
        done
    done;
    st.gate_evaluations <- st.gate_evaluations + 4;
    fold_ins4 st len (Array.unsafe_get k.opcode nxt);
    let n4 = nxt * 4 in
    for w = 0 to 3 do
      Bigarray.Array1.unsafe_set st.out w
        (Int64.logand
           (Bigarray.Array1.unsafe_get st.out w)
           (Int64.logxor
              (Bigarray.Array1.unsafe_get good (n4 + w))
              (Bigarray.Array1.unsafe_get st.out (4 + w))))
    done;
    cur := nxt
  done

(* --- drivers ------------------------------------------------------------- *)

let stats_of_escratches ~drop_detected first_detection scratches =
  let base =
    Array.fold_left
      (fun acc st ->
        Stats.add acc
          { Stats.zero with
            gate_evaluations = st.gate_evaluations;
            events = st.events;
            faults_inferred = st.faults_inferred;
            faults_simulated = st.faults_simulated;
            stem_simulations = st.stem_simulations })
      Stats.zero scratches
  in
  { base with
    Stats.faults_dropped = dropped_of ~drop_detected first_detection }

(* Event engine drivers: structurally the flat drivers with a resident
   faulty buffer (one blit per scratch per block). *)
let run_event ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults
    ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let st = make_escratch k in
  let is_output = output_map c in
  let good = Kernel.create_words k in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    Sim2.load_patterns k good vectors ~base ~count;
    Sim2.run_flat k good;
    resident_reset st good;
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        simulate_fault_event st ~is_output ~good ~count faults.(fi);
        if Bigarray.Array1.unsafe_get st.out 0 <> 0L then begin
          (match first_detection.(fi) with
          | None ->
              record_first first_detection fi ~base
                (Bigarray.Array1.unsafe_get st.out 0)
          | Some _ -> ());
          (match on_detect with
          | Some callback ->
              fire_events callback ~base ~count ~fault_index:fi
                (Bigarray.Array1.unsafe_get st.out 0)
          | None -> ());
          if drop_detected then live.(fi) <- false
        end
      end
    done
  done;
  {
    faults;
    first_detection;
    vectors_applied = n_vectors;
    gate_evaluations = st.gate_evaluations;
    stats = stats_of_escratches ~drop_detected first_detection [| st |];
  }

let run_event_in_pool ~drop_detected ~on_detect pool (c : Circuit.t) ~faults
    ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  let shards = min (Parallel.size pool) n_faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let is_output = output_map c in
  let scratches = Array.init shards (fun _ -> make_escratch k) in
  let good = Kernel.create_words k in
  let detect_words =
    match on_detect with Some _ -> Array.make n_faults 0L | None -> [||]
  in
  let shard_bounds s = (s * n_faults / shards, (s + 1) * n_faults / shards) in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    Sim2.load_patterns k good vectors ~base ~count;
    Sim2.run_flat k good;
    let has_callback = match on_detect with Some _ -> true | None -> false in
    Parallel.run pool ~tasks:shards (fun s ->
        let st = scratches.(s) in
        resident_reset st good;
        let lo, hi = shard_bounds s in
        for fi = lo to hi - 1 do
          if live.(fi) then begin
            simulate_fault_event st ~is_output ~good ~count faults.(fi);
            if Bigarray.Array1.unsafe_get st.out 0 <> 0L then begin
              (match first_detection.(fi) with
              | None ->
                  record_first first_detection fi ~base
                    (Bigarray.Array1.unsafe_get st.out 0)
              | Some _ -> ());
              if has_callback then
                detect_words.(fi) <- Bigarray.Array1.unsafe_get st.out 0;
              if drop_detected then live.(fi) <- false
            end
          end
        done);
    match on_detect with
    | Some callback ->
        for fi = 0 to n_faults - 1 do
          if detect_words.(fi) <> 0L then begin
            fire_events callback ~base ~count ~fault_index:fi detect_words.(fi);
            detect_words.(fi) <- 0L
          end
        done
    | None -> ()
  done;
  let gate_evaluations =
    Array.fold_left (fun acc st -> acc + st.gate_evaluations) 0 scratches
  in
  { faults; first_detection; vectors_applied = n_vectors; gate_evaluations;
    stats = stats_of_escratches ~drop_detected first_detection scratches }

(* Pruned engine drivers.  Per block: collect the set of FFR stems hosting a
   live fault (deduplicated against [stamp]), compute one toggle
   observability word per stem, then decide every live fault by trace AND
   observability.  The parallel driver runs the same two phases with the
   stem list and the fault array sharded contiguously; every stem is toggled
   exactly once in both drivers, so counter totals match serially. *)
let run_pruned ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults
    ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let st = make_escratch k in
  let is_output = output_map c in
  let good = Kernel.create_words k in
  let obs = Kernel.alloc (max 1 k.n_ffrs) in
  let stamp = Array.make (max 1 k.n_ffrs) (-1) in
  let needed = Array.make (max 1 k.n_ffrs) 0 in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    Sim2.load_patterns k good vectors ~base ~count;
    Sim2.run_flat k good;
    resident_reset st good;
    let n_needed = ref 0 in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let si = k.ffr_index.(site_node faults.(fi)) in
        if stamp.(si) <> block then begin
          stamp.(si) <- block;
          needed.(!n_needed) <- si;
          incr n_needed
        end
      end
    done;
    for i = 0 to !n_needed - 1 do
      let si = needed.(i) in
      simulate_toggle st ~is_output ~good ~count k.ffr_stems.(si);
      Bigarray.Array1.unsafe_set obs si (Bigarray.Array1.unsafe_get st.out 0)
    done;
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        st.faults_inferred <- st.faults_inferred + 1;
        trace_fault st ~good ~count faults.(fi);
        Bigarray.Array1.unsafe_set st.out 0
          (Int64.logand
             (Bigarray.Array1.unsafe_get st.out 0)
             (Bigarray.Array1.unsafe_get obs
                (Array.unsafe_get k.ffr_index (site_node faults.(fi)))));
        if Bigarray.Array1.unsafe_get st.out 0 <> 0L then begin
          (match first_detection.(fi) with
          | None ->
              record_first first_detection fi ~base
                (Bigarray.Array1.unsafe_get st.out 0)
          | Some _ -> ());
          (match on_detect with
          | Some callback ->
              fire_events callback ~base ~count ~fault_index:fi
                (Bigarray.Array1.unsafe_get st.out 0)
          | None -> ());
          if drop_detected then live.(fi) <- false
        end
      end
    done
  done;
  {
    faults;
    first_detection;
    vectors_applied = n_vectors;
    gate_evaluations = st.gate_evaluations;
    stats = stats_of_escratches ~drop_detected first_detection [| st |];
  }

let run_pruned_in_pool ~drop_detected ~on_detect pool (c : Circuit.t) ~faults
    ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  let shards = min (Parallel.size pool) n_faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let is_output = output_map c in
  let scratches = Array.init shards (fun _ -> make_escratch k) in
  let good = Kernel.create_words k in
  let obs = Kernel.alloc (max 1 k.n_ffrs) in
  let stamp = Array.make (max 1 k.n_ffrs) (-1) in
  let needed = Array.make (max 1 k.n_ffrs) 0 in
  let detect_words =
    match on_detect with Some _ -> Array.make n_faults 0L | None -> [||]
  in
  let shard_bounds s = (s * n_faults / shards, (s + 1) * n_faults / shards) in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    Sim2.load_patterns k good vectors ~base ~count;
    Sim2.run_flat k good;
    let n_needed = ref 0 in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let si = k.ffr_index.(site_node faults.(fi)) in
        if stamp.(si) <> block then begin
          stamp.(si) <- block;
          needed.(!n_needed) <- si;
          incr n_needed
        end
      end
    done;
    (* Phase A: stem observability, stems sharded contiguously.  Workers
       write disjoint [obs] slots; the pool barrier publishes them to
       phase B. *)
    if !n_needed > 0 then begin
      let stem_shards = min shards !n_needed in
      Parallel.run pool ~tasks:stem_shards (fun s ->
          let st = scratches.(s) in
          resident_reset st good;
          let lo = s * !n_needed / stem_shards in
          let hi = (s + 1) * !n_needed / stem_shards in
          for i = lo to hi - 1 do
            let si = needed.(i) in
            simulate_toggle st ~is_output ~good ~count k.ffr_stems.(si);
            Bigarray.Array1.unsafe_set obs si
              (Bigarray.Array1.unsafe_get st.out 0)
          done)
    end;
    (* Phase B: per-fault tracing (reads only [good] and [obs]). *)
    let has_callback = match on_detect with Some _ -> true | None -> false in
    Parallel.run pool ~tasks:shards (fun s ->
        let st = scratches.(s) in
        let lo, hi = shard_bounds s in
        for fi = lo to hi - 1 do
          if live.(fi) then begin
            st.faults_inferred <- st.faults_inferred + 1;
            trace_fault st ~good ~count faults.(fi);
            Bigarray.Array1.unsafe_set st.out 0
              (Int64.logand
                 (Bigarray.Array1.unsafe_get st.out 0)
                 (Bigarray.Array1.unsafe_get obs
                    (Array.unsafe_get k.ffr_index (site_node faults.(fi)))));
            if Bigarray.Array1.unsafe_get st.out 0 <> 0L then begin
              (match first_detection.(fi) with
              | None ->
                  record_first first_detection fi ~base
                    (Bigarray.Array1.unsafe_get st.out 0)
              | Some _ -> ());
              if has_callback then
                detect_words.(fi) <- Bigarray.Array1.unsafe_get st.out 0;
              if drop_detected then live.(fi) <- false
            end
          end
        done);
    match on_detect with
    | Some callback ->
        for fi = 0 to n_faults - 1 do
          if detect_words.(fi) <> 0L then begin
            fire_events callback ~base ~count ~fault_index:fi detect_words.(fi);
            detect_words.(fi) <- 0L
          end
        done
    | None -> ()
  done;
  let gate_evaluations =
    Array.fold_left (fun acc st -> acc + st.gate_evaluations) 0 scratches
  in
  { faults; first_detection; vectors_applied = n_vectors; gate_evaluations;
    stats = stats_of_escratches ~drop_detected first_detection scratches }

(* Wide engine drivers: the pruned scheme over 256-pattern blocks.  Fault
   dropping and event firing stay block-sequential — only the first
   non-empty 64-pattern sub-word of a dropped fault is reported, which is
   exactly what the 64-bit engines would have simulated. *)

(* [obs4] must be annotated: an unannotated bigarray parameter generalizes
   to a polymorphic kind/layout, compiling every access through the generic
   boxed path. *)
let decide_wide st k (obs4 : Kernel.words) (f : Stuck_at.t) ~good =
  trace_fault4 st ~good f;
  let si4 = Array.unsafe_get k.Kernel.ffr_index (site_node f) * 4 in
  for w = 0 to 3 do
    Bigarray.Array1.unsafe_set st.out w
      (Int64.logand
         (Bigarray.Array1.unsafe_get st.out w)
         (Bigarray.Array1.unsafe_get obs4 (si4 + w)))
  done

let run_wide ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults
    ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let st = make_escratch ~wide:true k in
  let is_output = output_map c in
  let good = Kernel.create_words4 k in
  let obs4 = Kernel.alloc (4 * max 1 k.n_ffrs) in
  let stamp = Array.make (max 1 k.n_ffrs) (-1) in
  let needed = Array.make (max 1 k.n_ffrs) 0 in
  (* [on_detect] contract: events fire in the serial 64-bit order — 64-pattern
     sub-block major, fault index minor — so detections are buffered per fault
     and replayed per sub-word after the block's fault loop. *)
  let detect_words =
    match on_detect with Some _ -> Array.make (4 * n_faults) 0L | None -> [||]
  in
  let has_callback = match on_detect with Some _ -> true | None -> false in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 255) / 256 in
  for block = 0 to n_blocks - 1 do
    let base = block * 256 in
    let count = min 256 (n_vectors - base) in
    Sim2.load_patterns4 k good vectors ~base ~count;
    Sim2.run_flat4 k good;
    resident_reset st good;
    set_vmasks st ~count;
    let n_needed = ref 0 in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let si = k.ffr_index.(site_node faults.(fi)) in
        if stamp.(si) <> block then begin
          stamp.(si) <- block;
          needed.(!n_needed) <- si;
          incr n_needed
        end
      end
    done;
    for i = 0 to !n_needed - 1 do
      let si = needed.(i) in
      simulate_toggle4 st ~is_output ~good k.ffr_stems.(si);
      for w = 0 to 3 do
        Bigarray.Array1.unsafe_set obs4 ((si * 4) + w)
          (Bigarray.Array1.unsafe_get st.out w)
      done
    done;
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        st.faults_inferred <- st.faults_inferred + 1;
        decide_wide st k obs4 faults.(fi) ~good;
        if drop_detected then begin
          let w = ref 0 in
          while
            !w < 4 && Bigarray.Array1.unsafe_get st.out !w = 0L
          do
            incr w
          done;
          if !w < 4 then begin
            (match first_detection.(fi) with
            | None ->
                record_first first_detection fi ~base:(base + (!w * 64))
                  (Bigarray.Array1.unsafe_get st.out !w)
            | Some _ -> ());
            if has_callback then
              detect_words.((fi * 4) + !w) <-
                Bigarray.Array1.unsafe_get st.out !w;
            live.(fi) <- false
          end
        end
        else
          (* No let-binding of the word: a binding with a boxed use (the
             [record_first] argument, the array store) would box on every
             iteration, detected or not. *)
          for w = 0 to 3 do
            if Bigarray.Array1.unsafe_get st.out w <> 0L then begin
              (match first_detection.(fi) with
              | None ->
                  record_first first_detection fi ~base:(base + (w * 64))
                    (Bigarray.Array1.unsafe_get st.out w)
              | Some _ -> ());
              if has_callback then
                detect_words.((fi * 4) + w) <-
                  Bigarray.Array1.unsafe_get st.out w
            end
          done
      end
    done;
    (match on_detect with
    | Some callback ->
        for w = 0 to 3 do
          for fi = 0 to n_faults - 1 do
            let dw = detect_words.((fi * 4) + w) in
            if dw <> 0L then begin
              fire_events callback ~base:(base + (w * 64))
                ~count:(sub_count ~count w) ~fault_index:fi dw;
              detect_words.((fi * 4) + w) <- 0L
            end
          done
        done
    | None -> ())
  done;
  {
    faults;
    first_detection;
    vectors_applied = n_vectors;
    gate_evaluations = st.gate_evaluations;
    stats = stats_of_escratches ~drop_detected first_detection [| st |];
  }

let run_wide_in_pool ~drop_detected ~on_detect pool (c : Circuit.t) ~faults
    ~vectors =
  let k = Kernel.of_circuit c in
  let n_faults = Array.length faults in
  let shards = min (Parallel.size pool) n_faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let is_output = output_map c in
  let scratches = Array.init shards (fun _ -> make_escratch ~wide:true k) in
  let good = Kernel.create_words4 k in
  let obs4 = Kernel.alloc (4 * max 1 k.n_ffrs) in
  let stamp = Array.make (max 1 k.n_ffrs) (-1) in
  let needed = Array.make (max 1 k.n_ffrs) 0 in
  (* Four buffered words per fault; a dropped fault stores only its first
     non-empty sub-word, so the replay below reproduces the serial stream. *)
  let detect_words =
    match on_detect with Some _ -> Array.make (4 * n_faults) 0L | None -> [||]
  in
  let shard_bounds s = (s * n_faults / shards, (s + 1) * n_faults / shards) in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 255) / 256 in
  for block = 0 to n_blocks - 1 do
    let base = block * 256 in
    let count = min 256 (n_vectors - base) in
    Sim2.load_patterns4 k good vectors ~base ~count;
    Sim2.run_flat4 k good;
    Array.iter (fun st -> set_vmasks st ~count) scratches;
    let n_needed = ref 0 in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let si = k.ffr_index.(site_node faults.(fi)) in
        if stamp.(si) <> block then begin
          stamp.(si) <- block;
          needed.(!n_needed) <- si;
          incr n_needed
        end
      end
    done;
    if !n_needed > 0 then begin
      let stem_shards = min shards !n_needed in
      Parallel.run pool ~tasks:stem_shards (fun s ->
          let st = scratches.(s) in
          resident_reset st good;
          let lo = s * !n_needed / stem_shards in
          let hi = (s + 1) * !n_needed / stem_shards in
          for i = lo to hi - 1 do
            let si = needed.(i) in
            simulate_toggle4 st ~is_output ~good k.ffr_stems.(si);
            for w = 0 to 3 do
              Bigarray.Array1.unsafe_set obs4 ((si * 4) + w)
                (Bigarray.Array1.unsafe_get st.out w)
            done
          done)
    end;
    let has_callback = match on_detect with Some _ -> true | None -> false in
    Parallel.run pool ~tasks:shards (fun s ->
        let st = scratches.(s) in
        let lo, hi = shard_bounds s in
        for fi = lo to hi - 1 do
          if live.(fi) then begin
            st.faults_inferred <- st.faults_inferred + 1;
            decide_wide st k obs4 faults.(fi) ~good;
            if drop_detected then begin
              let w = ref 0 in
              while !w < 4 && Bigarray.Array1.unsafe_get st.out !w = 0L do
                incr w
              done;
              if !w < 4 then begin
                (match first_detection.(fi) with
                | None ->
                    record_first first_detection fi ~base:(base + (!w * 64))
                      (Bigarray.Array1.unsafe_get st.out !w)
                | Some _ -> ());
                if has_callback then
                  detect_words.((fi * 4) + !w) <-
                    Bigarray.Array1.unsafe_get st.out !w;
                live.(fi) <- false
              end
            end
            else
              for w = 0 to 3 do
                if Bigarray.Array1.unsafe_get st.out w <> 0L then begin
                  (match first_detection.(fi) with
                  | None ->
                      record_first first_detection fi ~base:(base + (w * 64))
                        (Bigarray.Array1.unsafe_get st.out w)
                  | Some _ -> ());
                  if has_callback then
                    detect_words.((fi * 4) + w) <-
                      Bigarray.Array1.unsafe_get st.out w
                end
              done
          end
        done);
    (* replay in the serial 64-bit order: sub-block major, fault minor *)
    match on_detect with
    | Some callback ->
        for w = 0 to 3 do
          for fi = 0 to n_faults - 1 do
            let dw = detect_words.((fi * 4) + w) in
            if dw <> 0L then begin
              fire_events callback ~base:(base + (w * 64))
                ~count:(sub_count ~count w) ~fault_index:fi dw;
              detect_words.((fi * 4) + w) <- 0L
            end
          done
        done
    | None -> ()
  done;
  let gate_evaluations =
    Array.fold_left (fun acc st -> acc + st.gate_evaluations) 0 scratches
  in
  { faults; first_detection; vectors_applied = n_vectors; gate_evaluations;
    stats = stats_of_escratches ~drop_detected first_detection scratches }

(* --- engine dispatch ------------------------------------------------------ *)

let run_with ~engine ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults
    ~vectors =
  match engine with
  | Reference -> Reference.run ~drop_detected ?on_detect c ~faults ~vectors
  | Flat -> run ~drop_detected ?on_detect c ~faults ~vectors
  | Event -> run_event ~drop_detected ?on_detect c ~faults ~vectors
  | Pruned -> run_pruned ~drop_detected ?on_detect c ~faults ~vectors
  | Wide -> run_wide ~drop_detected ?on_detect c ~faults ~vectors

let run_parallel_with ~engine ?(drop_detected = true) ?on_detect ?domains ?pool
    c ~faults ~vectors =
  match engine with
  | Reference ->
      Reference.run_parallel ~drop_detected ?on_detect ?domains ?pool c ~faults
        ~vectors
  | Flat ->
      run_parallel ~drop_detected ?on_detect ?domains ?pool c ~faults ~vectors
  | Event | Pruned | Wide ->
      if Array.length faults = 0 then
        { faults; first_detection = [||];
          vectors_applied = Array.length vectors; gate_evaluations = 0;
          stats = Stats.zero }
      else
        let in_pool =
          match engine with
          | Event -> run_event_in_pool
          | Pruned -> run_pruned_in_pool
          | _ -> run_wide_in_pool
        in
        let serial =
          match engine with
          | Event -> run_event
          | Pruned -> run_pruned
          | _ -> run_wide
        in
        let dispatch pool =
          if Parallel.size pool = 1 then
            serial ~drop_detected ?on_detect c ~faults ~vectors
          else in_pool ~drop_detected ~on_detect pool c ~faults ~vectors
        in
        (match pool with
        | Some pool -> dispatch pool
        | None ->
            let domains =
              Option.map (fun d -> max 1 (min d (Array.length faults))) domains
            in
            Parallel.with_pool ?domains dispatch)

let detected_count r =
  Array.fold_left
    (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
    0 r.first_detection

let coverage r =
  if Array.length r.faults = 0 then 1.0
  else float_of_int (detected_count r) /. float_of_int (Array.length r.faults)

let detects_fault (c : Circuit.t) (f : Stuck_at.t) vector =
  let module Sim3 = Dl_logic.Sim3 in
  let module Ternary = Dl_logic.Ternary in
  let pi = Array.map Ternary.of_bool vector in
  let good = Sim3.outputs_of c (Sim3.run c pi) in
  let bad =
    Sim3.outputs_of c
      (Sim3.run_with_fault c
         ~site:(Stuck_at.to_sim3_site f.site)
         ~stuck:(Stuck_at.polarity_bool f.polarity)
         pi)
  in
  let differs = ref false in
  Array.iteri
    (fun i g ->
      match (g, bad.(i)) with
      | Ternary.V0, Ternary.V1 | Ternary.V1, Ternary.V0 -> differs := true
      | _ -> ())
    good;
  !differs

(* --- multi-detect (drop-after-n) driver ----------------------------------- *)

type ndet = {
  faults : Stuck_at.t array;
  drop_after : int;
  counts : int array;
  detections : int array;
  vectors_applied : int;
  gate_evaluations : int;
  stats : Stats.t;
}

(* The chunked driver below relies on the engine-independence lemma: running
   any engine with [drop_detected:false] over a block-width-aligned chunk of
   the vector sequence, restricted to the faults still live at the chunk
   boundary, produces exactly the detection events the full dropping run
   would have produced for those faults in that window.  Dropping is a
   performance optimisation, never a semantic one, so at [drop_after:1] the
   recorded first detections are bit-identical to [run ~drop_detected:true]
   for every engine. *)
let run_ndet ?(engine = Flat) ?domains ?pool ?on_detect ~drop_after
    (c : Circuit.t) ~faults ~vectors =
  if drop_after < 1 then
    invalid_arg "Fault_sim.run_ndet: drop_after must be >= 1";
  let n_faults = Array.length faults in
  let n_vectors = Array.length vectors in
  let counts = Array.make n_faults 0 in
  let detections = Array.make (n_faults * drop_after) (-1) in
  let stats = ref Stats.zero in
  let gate_evaluations = ref 0 in
  (* chunk at the engine's native block width so the live set is refreshed
     exactly where the dropping engines refresh theirs *)
  let chunk_width = match engine with Wide -> 256 | _ -> 64 in
  let run_chunk pool_opt ~live ~base ~count =
    let sub_faults = Array.map (fun i -> faults.(i)) live in
    let sub_vectors = Array.sub vectors base count in
    let on_detect_sub ~fault_index ~vector_index =
      let fi = live.(fault_index) in
      let k = counts.(fi) in
      if k < drop_after then begin
        counts.(fi) <- k + 1;
        detections.((fi * drop_after) + k) <- base + vector_index;
        match on_detect with
        | Some callback ->
            callback ~fault_index:fi ~vector_index:(base + vector_index)
        | None -> ()
      end
    in
    let r =
      match pool_opt with
      | Some pool ->
          run_parallel_with ~engine ~drop_detected:false
            ~on_detect:on_detect_sub ~pool c ~faults:sub_faults
            ~vectors:sub_vectors
      | None ->
          run_with ~engine ~drop_detected:false ~on_detect:on_detect_sub c
            ~faults:sub_faults ~vectors:sub_vectors
    in
    stats := Stats.add !stats r.stats;
    gate_evaluations := !gate_evaluations + r.gate_evaluations
  in
  let drive pool_opt =
    let live = ref (Array.init n_faults (fun i -> i)) in
    let base = ref 0 in
    while !base < n_vectors && Array.length !live > 0 do
      let count = min chunk_width (n_vectors - !base) in
      run_chunk pool_opt ~live:!live ~base:!base ~count;
      base := !base + count;
      if !base < n_vectors then
        live :=
          Array.of_list
            (List.filter
               (fun i -> counts.(i) < drop_after)
               (Array.to_list !live))
    done
  in
  (match (pool, domains) with
  | Some pool, _ -> drive (Some pool)
  | None, Some d when d > 1 ->
      Parallel.with_pool ~domains:d (fun pool -> drive (Some pool))
  | None, _ -> drive None);
  let dropped =
    Array.fold_left (fun acc k -> if k >= drop_after then acc + 1 else acc) 0
      counts
  in
  {
    faults;
    drop_after;
    counts;
    detections;
    vectors_applied = n_vectors;
    gate_evaluations = !gate_evaluations;
    stats = { !stats with faults_dropped = dropped };
  }

let ndet_kth_detection nd ~k =
  if k < 1 || k > nd.drop_after then
    invalid_arg "Fault_sim.ndet_kth_detection: k out of range";
  Array.init (Array.length nd.counts) (fun i ->
      if nd.counts.(i) >= k then Some nd.detections.((i * nd.drop_after) + k - 1)
      else None)

let ndet_first_detection nd = ndet_kth_detection nd ~k:1
