open Dl_netlist
module Sim2 = Dl_logic.Sim2
module Parallel = Dl_util.Parallel

type result = {
  faults : Stuck_at.t array;
  first_detection : int option array;
  vectors_applied : int;
  gate_evaluations : int;
}

(* Pending-node schedule bucketed by level, so faulty values propagate in
   topological order and each node is evaluated once per fault/block. *)
module Schedule = struct
  type t = {
    buckets : int list array;
    queued : bool array;
    mutable level : int;
    mutable remaining : int;
  }

  let create depth nodes =
    {
      buckets = Array.make (depth + 1) [];
      queued = Array.make nodes false;
      level = 0;
      remaining = 0;
    }

  let push t ~level id =
    if not t.queued.(id) then begin
      t.queued.(id) <- true;
      t.buckets.(level) <- id :: t.buckets.(level);
      if level < t.level then t.level <- level;
      t.remaining <- t.remaining + 1
    end

  let reset t = t.level <- 0

  let pop t =
    if t.remaining = 0 then None
    else begin
      while t.buckets.(t.level) = [] do
        t.level <- t.level + 1
      done;
      match t.buckets.(t.level) with
      | [] -> assert false
      | id :: rest ->
          t.buckets.(t.level) <- rest;
          t.queued.(id) <- false;
          t.remaining <- t.remaining - 1;
          Some id
    end
end

let lowest_set_bit w =
  if w = 0L then None
  else begin
    let rec scan i =
      if Int64.logand (Int64.shift_right_logical w i) 1L = 1L then i else scan (i + 1)
    in
    Some (scan 0)
  end

(* Per-worker mutable state: the faulty-machine scratch arrays and schedule.
   The circuit, the [is_output] map and the good-machine words of the
   current block are shared read-only between workers. *)
type scratch = {
  schedule : Schedule.t;
  faulty : int64 array;
  touched : bool array;
  mutable touched_list : int list;
  mutable gate_evaluations : int;
}

let make_scratch (c : Circuit.t) =
  let n_nodes = Circuit.node_count c in
  {
    schedule = Schedule.create (Circuit.depth c) n_nodes;
    faulty = Array.make n_nodes 0L;
    touched = Array.make n_nodes false;
    touched_list = [];
    gate_evaluations = 0;
  }

(* Simulate one fault against one 64-vector block.  Returns the detection
   word (one bit per vector of the block that propagates a difference to a
   primary output).  The scratch arrays are clean on entry and are cleaned
   again before returning.  This is the single code path used by both the
   serial and the parallel driver, which is what makes them bit-for-bit
   identical. *)
let simulate_fault (c : Circuit.t) st ~is_output ~good ~valid_mask
    (f : Stuck_at.t) =
  let touch id v =
    if not st.touched.(id) then begin
      st.touched.(id) <- true;
      st.touched_list <- id :: st.touched_list
    end;
    st.faulty.(id) <- v
  in
  let value_of id = if st.touched.(id) then st.faulty.(id) else good.(id) in
  let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
  (* Seed the faulty machine at the fault site. *)
  let detect_word = ref 0L in
  let seeded =
    match f.site with
    | Stuck_at.Stem id ->
        let diff = Int64.logand (Int64.logxor good.(id) stuck_word) valid_mask in
        if diff = 0L then false
        else begin
          touch id stuck_word;
          if is_output.(id) then detect_word := diff;
          Array.iter
            (fun succ -> Schedule.push st.schedule ~level:c.levels.(succ) succ)
            c.fanouts.(id);
          true
        end
    | Stuck_at.Branch { gate; pin } ->
        let nd = c.nodes.(gate) in
        let ins = Array.map (fun src -> good.(src)) nd.fanin in
        ins.(pin) <- stuck_word;
        st.gate_evaluations <- st.gate_evaluations + 1;
        let v = Gate.eval_word nd.kind ins in
        let diff = Int64.logand (Int64.logxor good.(gate) v) valid_mask in
        if diff = 0L then false
        else begin
          touch gate v;
          if is_output.(gate) then detect_word := diff;
          Array.iter
            (fun succ -> Schedule.push st.schedule ~level:c.levels.(succ) succ)
            c.fanouts.(gate);
          true
        end
  in
  if seeded then begin
    let rec drain () =
      match Schedule.pop st.schedule with
      | None -> ()
      | Some id ->
          let nd = c.nodes.(id) in
          let ins = Array.map value_of nd.fanin in
          (* A branch fault keeps forcing its pin on every evaluation
             of its host gate. *)
          (match f.site with
          | Stuck_at.Branch { gate; pin } when gate = id -> ins.(pin) <- stuck_word
          | _ -> ());
          st.gate_evaluations <- st.gate_evaluations + 1;
          let v = Gate.eval_word nd.kind ins in
          let forced =
            match f.site with
            | Stuck_at.Stem sid when sid = id -> stuck_word
            | _ -> v
          in
          let diff = Int64.logand (Int64.logxor good.(id) forced) valid_mask in
          if diff <> 0L || st.touched.(id) then begin
            touch id forced;
            if diff <> 0L then begin
              if is_output.(id) then detect_word := Int64.logor !detect_word diff;
              Array.iter
                (fun succ -> Schedule.push st.schedule ~level:c.levels.(succ) succ)
                c.fanouts.(id)
            end
          end;
          drain ()
    in
    drain ();
    List.iter (fun id -> st.touched.(id) <- false) st.touched_list;
    st.touched_list <- [];
    Schedule.reset st.schedule
  end;
  !detect_word

let output_map (c : Circuit.t) =
  let is_output = Array.make (Circuit.node_count c) false in
  Array.iter (fun o -> is_output.(o) <- true) c.outputs;
  is_output

let fire_events callback ~base ~count ~fault_index word =
  for bit = 0 to count - 1 do
    if Int64.logand (Int64.shift_right_logical word bit) 1L = 1L then
      callback ~fault_index ~vector_index:(base + bit)
  done

let record_first first_detection fi ~base word =
  match lowest_set_bit word with
  | Some bit -> if first_detection.(fi) = None then first_detection.(fi) <- Some (base + bit)
  | None -> ()

let valid_mask_of count =
  if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L

let run ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults ~vectors =
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let st = make_scratch c in
  let is_output = output_map c in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    let patterns = Array.sub vectors base count in
    let words = Sim2.words_of_patterns c patterns in
    let good = Sim2.run c words in
    let valid_mask = valid_mask_of count in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let dw = simulate_fault c st ~is_output ~good ~valid_mask faults.(fi) in
        if dw <> 0L then begin
          record_first first_detection fi ~base dw;
          (match on_detect with
          | Some callback -> fire_events callback ~base ~count ~fault_index:fi dw
          | None -> ());
          if drop_detected then live.(fi) <- false
        end
      end
    done
  done;
  {
    faults;
    first_detection;
    vectors_applied = n_vectors;
    gate_evaluations = st.gate_evaluations;
  }

(* Parallel driver: the fault array is cut into [size pool] contiguous
   shards, fixed for the whole run, and every worker keeps its own scratch
   while the circuit and each block's good-machine words are shared
   read-only.  Each fault index is written (first_detection, live and the
   per-block detection word) only by its owning worker, and the pool's job
   barrier orders those writes before the merge below reads them, so the
   result is deterministic and equal to the serial engine's: per-fault
   outcomes do not depend on simulation order, gate-evaluation counts sum
   to the same total, and buffered [on_detect] events are replayed in
   fault-index order within each block — exactly the serial firing order. *)
let run_in_pool ~drop_detected ~on_detect pool (c : Circuit.t) ~faults ~vectors =
  let shards = Parallel.size pool in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let is_output = output_map c in
  let scratches = Array.init shards (fun _ -> make_scratch c) in
  (* Per-fault detection word of the current block, kept only when events
     must be replayed to a callback. *)
  let detect_words =
    match on_detect with Some _ -> Array.make n_faults 0L | None -> [||]
  in
  let shard_bounds s = (s * n_faults / shards, (s + 1) * n_faults / shards) in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    let patterns = Array.sub vectors base count in
    let words = Sim2.words_of_patterns c patterns in
    let good = Sim2.run c words in
    let valid_mask = valid_mask_of count in
    Parallel.run pool ~tasks:shards (fun s ->
        let st = scratches.(s) in
        let lo, hi = shard_bounds s in
        for fi = lo to hi - 1 do
          if live.(fi) then begin
            let dw = simulate_fault c st ~is_output ~good ~valid_mask faults.(fi) in
            if dw <> 0L then begin
              record_first first_detection fi ~base dw;
              if on_detect <> None then detect_words.(fi) <- dw;
              if drop_detected then live.(fi) <- false
            end
          end
        done);
    match on_detect with
    | Some callback ->
        for fi = 0 to n_faults - 1 do
          if detect_words.(fi) <> 0L then begin
            fire_events callback ~base ~count ~fault_index:fi detect_words.(fi);
            detect_words.(fi) <- 0L
          end
        done
    | None -> ()
  done;
  let gate_evaluations =
    Array.fold_left (fun acc st -> acc + st.gate_evaluations) 0 scratches
  in
  { faults; first_detection; vectors_applied = n_vectors; gate_evaluations }

let run_parallel ?(drop_detected = true) ?on_detect ?domains ?pool c ~faults
    ~vectors =
  let dispatch pool =
    if Parallel.size pool = 1 then run ~drop_detected ?on_detect c ~faults ~vectors
    else run_in_pool ~drop_detected ~on_detect pool c ~faults ~vectors
  in
  match pool with
  | Some pool -> dispatch pool
  | None -> Parallel.with_pool ?domains dispatch

let detected_count r =
  Array.fold_left
    (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
    0 r.first_detection

let coverage r =
  if Array.length r.faults = 0 then 1.0
  else float_of_int (detected_count r) /. float_of_int (Array.length r.faults)

let detects_fault (c : Circuit.t) (f : Stuck_at.t) vector =
  let module Sim3 = Dl_logic.Sim3 in
  let module Ternary = Dl_logic.Ternary in
  let pi = Array.map Ternary.of_bool vector in
  let good = Sim3.outputs_of c (Sim3.run c pi) in
  let bad =
    Sim3.outputs_of c
      (Sim3.run_with_fault c
         ~site:(Stuck_at.to_sim3_site f.site)
         ~stuck:(Stuck_at.polarity_bool f.polarity)
         pi)
  in
  let differs = ref false in
  Array.iteri
    (fun i g ->
      match (g, bad.(i)) with
      | Ternary.V0, Ternary.V1 | Ternary.V1, Ternary.V0 -> differs := true
      | _ -> ())
    good;
  !differs
