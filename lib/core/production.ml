module Rng = Dl_util.Rng

type lot = {
  dies : int;
  passed : int;
  defective_passed : int;
  defective_total : int;
}

let defect_level lot =
  if lot.passed = 0 then 0.0
  else float_of_int lot.defective_passed /. float_of_int lot.passed

let observed_yield lot =
  if lot.dies = 0 then 1.0
  else float_of_int (lot.dies - lot.defective_total) /. float_of_int lot.dies

let gamma_sample rng ~alpha =
  if alpha <= 0.0 then invalid_arg "Production.gamma_sample: alpha must be positive";
  (* Mean-1 severity factor: Gamma(alpha, 1/alpha) (see Dl_util.Prob). *)
  Dl_util.Prob.gamma_mixing_sample rng ~alpha

let check_inputs ~dies ~weights ~detected =
  if dies <= 0 then invalid_arg "Production.simulate: dies must be positive";
  if Array.length weights <> Array.length detected then
    invalid_arg "Production.simulate: weights and detected differ in length";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Production.simulate: negative weight")
    weights

let run_lot rng ~dies ~weights ~detected ~severity =
  let n = Array.length weights in
  let passed = ref 0 and defective_passed = ref 0 and defective_total = ref 0 in
  for _ = 1 to dies do
    let g = severity rng in
    let any_fault = ref false and any_detected = ref false in
    for j = 0 to n - 1 do
      let p = -.Float.expm1 (-.(g *. weights.(j))) in
      if p > 0.0 && Rng.bernoulli rng p then begin
        any_fault := true;
        if detected.(j) then any_detected := true
      end
    done;
    if !any_fault then incr defective_total;
    if not !any_detected then begin
      incr passed;
      if !any_fault then incr defective_passed
    end
  done;
  {
    dies;
    passed = !passed;
    defective_passed = !defective_passed;
    defective_total = !defective_total;
  }

let simulate ?(seed = 1) ~dies ~weights ~detected () =
  check_inputs ~dies ~weights ~detected;
  let rng = Rng.create seed in
  run_lot rng ~dies ~weights ~detected ~severity:(fun _ -> 1.0)

let simulate_clustered ?(seed = 1) ~dies ~alpha ~weights ~detected () =
  check_inputs ~dies ~weights ~detected;
  if alpha <= 0.0 then invalid_arg "Production.simulate_clustered: alpha must be positive";
  let rng = Rng.create seed in
  run_lot rng ~dies ~weights ~detected ~severity:(fun rng -> gamma_sample rng ~alpha)
