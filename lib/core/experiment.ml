open Dl_netlist
module Coverage = Dl_fault.Coverage
module Ifa = Dl_extract.Ifa
module Realistic = Dl_switch.Realistic
module Swift = Dl_switch.Swift
module Stage = Dl_store.Stage
module Artifact = Dl_store.Artifact

type mc = {
  mc_dies : int;
  mc_dies_per_wafer : int;
  mc_wafers_per_lot : int;
  mc_alpha_wafer : float;
  mc_alpha_lot : float;
  mc_points : int;
}

let mc ?(dies_per_wafer = 256) ?(wafers_per_lot = 4) ?(alpha_wafer = infinity)
    ?(alpha_lot = infinity) ?(points = 25) ~dies () =
  if dies <= 0 then invalid_arg "Experiment.mc: dies must be positive";
  if dies_per_wafer <= 0 then
    invalid_arg "Experiment.mc: dies_per_wafer must be positive";
  if wafers_per_lot <= 0 then
    invalid_arg "Experiment.mc: wafers_per_lot must be positive";
  if Float.is_nan alpha_wafer || alpha_wafer <= 0.0 then
    invalid_arg "Experiment.mc: alpha_wafer must be positive";
  if Float.is_nan alpha_lot || alpha_lot <= 0.0 then
    invalid_arg "Experiment.mc: alpha_lot must be positive";
  if points < 1 then invalid_arg "Experiment.mc: points must be >= 1";
  {
    mc_dies = dies;
    mc_dies_per_wafer = dies_per_wafer;
    mc_wafers_per_lot = wafers_per_lot;
    mc_alpha_wafer = alpha_wafer;
    mc_alpha_lot = alpha_lot;
    mc_points = points;
  }

type config = {
  circuit : Circuit.t;
  seed : int;
  max_random_vectors : int;
  target_yield : float;
  stats : Dl_extract.Defect_stats.t;
  min_weight_ratio : float;
  rows : int option;
  domains : int;
  pool : Dl_util.Parallel.t option;
  collapse_faults : bool;
  sim_engine : Dl_fault.Fault_sim.engine;
  cache_dir : string option;
  remote : Stage.remote option;
  mc : mc option;
  bootstrap : int option;
  ndet : int option;
}

let config ?(seed = 7) ?(max_random_vectors = 4096) ?(target_yield = 0.75)
    ?(stats = Dl_extract.Defect_stats.default) ?(min_weight_ratio = 0.0) ?rows
    ?(domains = Dl_util.Parallel.default_domains ()) ?pool
    ?(collapse_faults = true) ?(sim_engine = Dl_fault.Fault_sim.Wide)
    ?cache_dir ?remote ?mc ?bootstrap ?ndet circuit =
  if not (target_yield > 0.0 && target_yield < 1.0) then
    invalid_arg "Experiment.config: target yield must be in (0, 1)";
  if domains < 1 then invalid_arg "Experiment.config: domains must be >= 1";
  (match bootstrap with
  | Some k when k <= 0 ->
      invalid_arg "Experiment.config: bootstrap replicates must be positive"
  | _ -> ());
  (match ndet with
  | Some n when n < 1 ->
      invalid_arg "Experiment.config: ndet quota must be >= 1"
  | _ -> ());
  { circuit; seed; max_random_vectors; target_yield; stats; min_weight_ratio;
    rows; domains; pool; collapse_faults; sim_engine; cache_dir; remote;
    mc; bootstrap; ndet }

(* The n-detection extension (PR: Dl_ndet).  [profile] is the multi-detect
   simulation of the SAME vector sequence the 1-detection flow applies, so
   its n = 1 slice is bit-identical to [t_curve]; [gen_*] is the separately
   generated n-detection test set ({!Dl_ndet.Atpg_n}). *)
type ndet_result = {
  ndet_n : int;
  profile : Dl_fault.Fault_sim.ndet;
  dl_n : Dl_n.t;
  gen_vectors : bool array array;
  gen_counts : int array;
  gen_stats : Dl_ndet.Atpg_n.stats;
}

type t = {
  cfg : config;
  mapped_circuit : Circuit.t;
  vectors : bool array array;
  atpg_stats : Dl_atpg.Atpg.stats;
  stuck_faults : Dl_fault.Stuck_at.t array;
  sim_stats : Dl_fault.Fault_sim.Stats.t;
  extraction : Ifa.extraction;
  scale_factor : float;
  yield : float;
  scaled_weights : float array;
  t_curve : Coverage.t;
  theta_curve : Coverage.t;
  gamma_curve : Coverage.t;
  theta_iddq_curve : Coverage.t;
  swift_result : Swift.result;
  fit : Projection.fit;
  wafer_mc : Wafer_mc.t option;
  bootstrap_fit : Bootstrap.t option;
  ndet : ndet_result option;
  summary : string;
  stage_reports : Stage.report list;
}

let fit_sample_points = 100

(* Per-stage config fingerprints, shared between [run] (which passes them
   to [Stage.run]) and [stage_keys] (which derives the same keys without
   running anything) so the two can never drift apart. *)
let atpg_config cfg =
  [
    ("seed", string_of_int cfg.seed);
    ("max_random_vectors", string_of_int cfg.max_random_vectors);
  ]

let universe_config cfg =
  [ ("collapse_faults", string_of_bool cfg.collapse_faults) ]

(* The engine is part of the fault-sim stage key even though detection
   results are engine-independent: the cached artifact carries per-engine
   [Stats] counters, so two engines must never alias one cache entry
   (PR 7 fixed exactly that aliasing). *)
let faultsim_config cfg =
  [ ("engine", Dl_fault.Fault_sim.engine_to_string cfg.sim_engine) ]

let ifa_config cfg =
  [
    ("defect_stats", Artifact.defect_stats_fingerprint cfg.stats);
    ("min_weight_ratio", Printf.sprintf "%h" cfg.min_weight_ratio);
    ("rows", match cfg.rows with None -> "auto" | Some r -> string_of_int r);
  ]

let projection_config cfg =
  [
    ("target_yield", Printf.sprintf "%h" cfg.target_yield);
    ("fit_points", string_of_int fit_sample_points);
  ]

(* The MC knobs fingerprint ONLY the wafer-mc stage (and the bootstrap
   count only bootstrap-fit): turning either on, or changing dies/alphas/
   replicates, must never invalidate a simulation artifact.  [cfg.seed]
   drives the Seeds streams of both stages but is deliberately absent
   here — it is already digested via the atpg input key. *)
let wafer_mc_config cfg m =
  [
    ("dies", string_of_int m.mc_dies);
    ("dies_per_wafer", string_of_int m.mc_dies_per_wafer);
    ("wafers_per_lot", string_of_int m.mc_wafers_per_lot);
    ("alpha_wafer", Printf.sprintf "%h" m.mc_alpha_wafer);
    ("alpha_lot", Printf.sprintf "%h" m.mc_alpha_lot);
    ("points", string_of_int m.mc_points);
    ("target_yield", Printf.sprintf "%h" cfg.target_yield);
  ]

let bootstrap_config cfg replicates =
  [
    ("replicates", string_of_int replicates);
    ("fit_points", string_of_int fit_sample_points);
    ("target_yield", Printf.sprintf "%h" cfg.target_yield);
  ]

(* Like fault-sim, the multi-detect profile keys on the engine: counts and
   detection indices are engine-independent, but the cached artifact
   carries per-engine [Stats] counters. *)
let ndet_sim_config cfg n =
  [
    ("n", string_of_int n);
    ("engine", Dl_fault.Fault_sim.engine_to_string cfg.sim_engine);
  ]

let ndet_atpg_config cfg n =
  [
    ("n", string_of_int n);
    ("seed", string_of_int cfg.seed);
    ("max_random_vectors", string_of_int cfg.max_random_vectors);
  ]

(* The stage keys are pure functions of the config: every stage's key
   digests only its name, codec kind/version, config fingerprint and the
   keys of its inputs, and the root of that DAG is the content key of the
   input circuit.  This is what lets a server coalesce identical requests
   before running anything — two configs with equal [request_key] denote
   bit-identical experiment results. *)
let stage_keys cfg =
  let circuit_key = Dl_store.Codec.content_key Artifact.circuit cfg.circuit in
  let mapping =
    Stage.key ~stage:"mapping" ~codec:Artifact.circuit ~config:[]
      ~inputs:[ circuit_key ]
  in
  let atpg =
    Stage.key ~stage:"atpg" ~codec:Artifact.atpg ~config:(atpg_config cfg)
      ~inputs:[ mapping ]
  in
  let universe =
    Stage.key ~stage:"fault-universe" ~codec:Artifact.stuck_faults
      ~config:(universe_config cfg) ~inputs:[ mapping; atpg ]
  in
  let faultsim =
    Stage.key ~stage:"fault-sim" ~codec:Artifact.detections
      ~config:(faultsim_config cfg)
      ~inputs:[ mapping; universe; atpg ]
  in
  let ifa =
    Stage.key ~stage:"layout-ifa" ~codec:Artifact.ifa ~config:(ifa_config cfg)
      ~inputs:[ mapping ]
  in
  let swift =
    Stage.key ~stage:"swift" ~codec:Artifact.swift ~config:[]
      ~inputs:[ mapping; ifa; atpg ]
  in
  let projection =
    Stage.key ~stage:"projection" ~codec:Artifact.summary
      ~config:(projection_config cfg)
      ~inputs:[ universe; faultsim; ifa; swift ]
  in
  let base =
    [
      ("mapping", mapping);
      ("atpg", atpg);
      ("fault-universe", universe);
      ("fault-sim", faultsim);
      ("layout-ifa", ifa);
      ("swift", swift);
      ("projection", projection);
    ]
  in
  let with_mc =
    match cfg.mc with
    | None -> base
    | Some m ->
        base
        @ [
            ( "wafer-mc",
              Stage.key ~stage:"wafer-mc" ~codec:Artifact.wafer_mc
                ~config:(wafer_mc_config cfg m)
                ~inputs:[ atpg; ifa; swift ] );
          ]
  in
  let with_bootstrap =
    match cfg.bootstrap with
    | None -> with_mc
    | Some k ->
        with_mc
        @ [
            ( "bootstrap-fit",
              Stage.key ~stage:"bootstrap-fit" ~codec:Artifact.bootstrap_fit
                ~config:(bootstrap_config cfg k)
                ~inputs:[ universe; faultsim; ifa; swift ] );
          ]
  in
  match cfg.ndet with
  | None -> with_bootstrap
  | Some n ->
      with_bootstrap
      @ [
          ( "ndet-sim",
            Stage.key ~stage:"ndet-sim" ~codec:Artifact.ndet_profile
              ~config:(ndet_sim_config cfg n)
              ~inputs:[ mapping; universe; atpg ] );
          ( "ndet-atpg",
            Stage.key ~stage:"ndet-atpg" ~codec:Artifact.ndet_atpg
              ~config:(ndet_atpg_config cfg n)
              ~inputs:[ mapping; universe ] );
        ]

let request_key cfg = List.assoc "projection" (stage_keys cfg)

(* --- stage bodies --------------------------------------------------------

   One function per [Stage.run] call, shared by [run] (the full pipeline)
   and [run_stage] (one stage plus its dependency closure — the unit of
   cluster fan-out) so the stage bodies and key derivations exist exactly
   once and cannot drift. *)

let graph_of_config cfg =
  let store = Option.map Dl_store.Store.open_ cfg.cache_dir in
  Stage.create ?store ?remote:cfg.remote ()

(* 1. Technology-map the netlist. *)
let stage_mapping graph cfg =
  let circuit_key = Dl_store.Codec.content_key Artifact.circuit cfg.circuit in
  Stage.run graph ~stage:"mapping" ~codec:Artifact.circuit
    ~inputs:[ circuit_key ]
    (fun () -> Transform.decompose_for_cells cfg.circuit)

(* 2. Test generation: random prefix then deterministic top-up. *)
let stage_atpg graph cfg ~c ~mapping_key =
  Stage.run graph ~stage:"atpg" ~codec:Artifact.atpg
    ~config:(atpg_config cfg) ~inputs:[ mapping_key ]
    (fun () ->
      let r, _ =
        Dl_atpg.Atpg.full_flow ~seed:cfg.seed
          ~max_random:cfg.max_random_vectors c
      in
      {
        Artifact.vectors = r.vectors;
        stats = r.stats;
        coverage = r.coverage;
        untestable_faults = r.untestable_faults;
        aborted_faults = r.aborted_faults;
      })

(* The paper neglects redundant stuck-at faults ("so that T(k) -> 1 when
   k -> infinity"); drop the PODEM-proven-redundant ones from the T
   denominator.  Aborted faults stay: they are potentially testable.

   ATPG always works on the collapsed universe ([full_flow] collapses),
   which is also what we simulate by default: one representative per
   equivalence class, every class weighing the same in T(k).  With
   [collapse_faults = false] the paper-faithful uncollapsed universe is
   simulated instead — every line fault counts individually, so a class
   with many equivalent members weighs proportionally more in the
   coverage denominator (the classical uncollapsed coverage definition).
   Final coverage is typically close but NOT identical between the two.
   A PODEM-proved-redundant representative proves its whole equivalence
   class redundant, so in uncollapsed mode the untestable filter expands
   each untestable representative to its full class. *)
let stage_universe graph cfg ~c ~atpg_art ~mapping_key ~atpg_key =
  Stage.run graph ~stage:"fault-universe" ~codec:Artifact.stuck_faults
    ~config:(universe_config cfg) ~inputs:[ mapping_key; atpg_key ]
    (fun () ->
      let untestable = atpg_art.Artifact.untestable_faults in
      if cfg.collapse_faults then begin
        let all_stuck_faults =
          Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c)
        in
        Array.of_seq
          (Seq.filter
             (fun f ->
               not
                 (Array.exists
                    (fun u -> Dl_fault.Stuck_at.equal u f)
                    untestable))
             (Array.to_seq all_stuck_faults))
      end
      else begin
        let universe = Dl_fault.Stuck_at.universe c in
        let classes = Dl_fault.Stuck_at.equivalence_classes c universe in
        let untestable_members =
          classes |> Array.to_seq
          |> Seq.filter (fun cls ->
                 Array.exists
                   (fun u -> Dl_fault.Stuck_at.equal u cls.(0))
                   untestable)
          |> Seq.concat_map Array.to_seq
          |> List.of_seq
        in
        Array.of_seq
          (Seq.filter
             (fun f ->
               not
                 (List.exists (Dl_fault.Stuck_at.equal f) untestable_members))
             (Array.to_seq universe))
      end)

(* 3. Gate-level stuck-at fault simulation over the same sequence
   (parallel engine; bit-for-bit identical to the serial one, so the
   domain count is deliberately absent from the stage key). *)
let stage_faultsim graph cfg ~c ~stuck_faults ~vectors ~mapping_key
    ~universe_key ~atpg_key =
  Stage.run graph ~stage:"fault-sim" ~codec:Artifact.detections
    ~config:(faultsim_config cfg)
    ~inputs:[ mapping_key; universe_key; atpg_key ]
    (fun () ->
      let sim =
        Dl_fault.Fault_sim.run_parallel_with ~engine:cfg.sim_engine
          ~domains:cfg.domains ?pool:cfg.pool c ~faults:stuck_faults
          ~vectors
      in
      {
        Artifact.first_detection = sim.first_detection;
        vectors_applied = sim.vectors_applied;
        gate_evaluations = sim.gate_evaluations;
        sim_stats = sim.stats;
      })

(* 4. Layout synthesis and inductive fault analysis.  Mapping and layout
   are recomputed even on a warm run (they are deterministic, cheap and
   needed as live data structures); the geometry *scan* — the expensive
   part — is what the layout-ifa artifact caches. *)
let stage_ifa graph cfg ~layout ~mapping_key =
  Stage.run graph ~stage:"layout-ifa" ~codec:Artifact.ifa
    ~config:(ifa_config cfg) ~inputs:[ mapping_key ]
    (fun () ->
      let e =
        Ifa.extract ~stats:cfg.stats ~min_weight_ratio:cfg.min_weight_ratio
          layout
      in
      {
        Artifact.faults = e.faults;
        gross_weight = e.gross_weight;
        summaries = e.summaries;
      })

(* 6. Switch-level realistic fault simulation. *)
let stage_swift graph ~mapping ~faults ~vectors ~mapping_key ~ifa_key
    ~atpg_key =
  Stage.run graph ~stage:"swift" ~codec:Artifact.swift
    ~inputs:[ mapping_key; ifa_key; atpg_key ]
    (fun () ->
      let network = Dl_switch.Network.build mapping in
      let r = Swift.run network ~faults ~vectors in
      {
        Artifact.detection = r.detection;
        vectors_applied = r.vectors_applied;
        region_solves = r.region_solves;
      })

(* 7/8. The statistical stages (PR: Monte-Carlo yield engine).  Both draw
   exclusively from path-keyed Seeds streams rooted at [cfg.seed], so the
   cached artifact is a pure function of its stage key. *)

let seeds_of cfg name = Dl_util.Seeds.scope (Dl_util.Seeds.create cfg.seed) name

let artifact_of_wafer_mc (t : Wafer_mc.t) : Artifact.wafer_mc =
  {
    Artifact.mc_dies = t.dies;
    mc_dies_per_wafer = t.dies_per_wafer;
    mc_wafers_per_lot = t.wafers_per_lot;
    mc_wafers = t.wafers;
    mc_lots = t.lots;
    mc_alpha_wafer = t.alpha_wafer;
    mc_alpha_lot = t.alpha_lot;
    mc_defective = t.defective;
    mc_bands =
      Array.map
        (fun (b : Wafer_mc.band) ->
          {
            Artifact.k = b.k;
            coverage = b.coverage;
            dl_point = b.dl_point;
            dl_q05 = b.dl_q05;
            dl_q50 = b.dl_q50;
            dl_q95 = b.dl_q95;
            passed = b.passed;
            defective_passed = b.defective_passed;
            wafer_dls = b.wafer_dls;
          })
        t.bands;
  }

let wafer_mc_of_artifact (a : Artifact.wafer_mc) : Wafer_mc.t =
  {
    Wafer_mc.dies = a.Artifact.mc_dies;
    dies_per_wafer = a.mc_dies_per_wafer;
    wafers_per_lot = a.mc_wafers_per_lot;
    wafers = a.mc_wafers;
    lots = a.mc_lots;
    alpha_wafer = a.mc_alpha_wafer;
    alpha_lot = a.mc_alpha_lot;
    defective = a.mc_defective;
    bands =
      Array.map
        (fun (b : Artifact.wafer_mc_band) ->
          {
            Wafer_mc.k = b.Artifact.k;
            coverage = b.coverage;
            dl_point = b.dl_point;
            dl_q05 = b.dl_q05;
            dl_q50 = b.dl_q50;
            dl_q95 = b.dl_q95;
            passed = b.passed;
            defective_passed = b.defective_passed;
            wafer_dls = b.wafer_dls;
          })
        a.mc_bands;
  }

let artifact_of_bootstrap (b : Bootstrap.t) : Artifact.bootstrap_fit =
  {
    Artifact.fit_points = b.fit_points;
    point_r = b.point.Projection.params.r;
    point_theta_max = b.point.Projection.params.theta_max;
    point_rmse = b.point.Projection.rmse;
    point_rmse_log10 = (b.point.Projection.rmse_scale = Projection.Log10);
    alpha_point = b.alpha_point;
    r_samples = b.r_samples;
    theta_max_samples = b.theta_max_samples;
    alpha_samples = b.alpha_samples;
  }

let bootstrap_of_artifact (a : Artifact.bootstrap_fit) : Bootstrap.t =
  Bootstrap.of_samples ~fit_points:a.Artifact.fit_points
    ~point:
      {
        Projection.params =
          { Projection.r = a.point_r; theta_max = a.point_theta_max };
        rmse = a.point_rmse;
        rmse_scale =
          (if a.point_rmse_log10 then Projection.Log10 else Projection.Linear);
      }
    ~alpha_point:a.alpha_point ~r_samples:a.r_samples
    ~theta_max_samples:a.theta_max_samples ~alpha_samples:a.alpha_samples

let stage_wafer_mc graph cfg m ~n_vectors ~scaled_weights ~voltage_firsts
    ~theta_curve ~atpg_key ~ifa_key ~swift_key =
  Stage.run graph ~stage:"wafer-mc" ~codec:Artifact.wafer_mc
    ~config:(wafer_mc_config cfg m)
    ~inputs:[ atpg_key; ifa_key; swift_key ]
    (fun () ->
      let ks = Coverage.log_spaced ~max:n_vectors ~points:m.mc_points in
      let points = Array.map (fun k -> (k, Coverage.at theta_curve k)) ks in
      artifact_of_wafer_mc
        (Wafer_mc.simulate ~dies_per_wafer:m.mc_dies_per_wafer
           ~wafers_per_lot:m.mc_wafers_per_lot ~alpha_wafer:m.mc_alpha_wafer
           ~alpha_lot:m.mc_alpha_lot
           ~seeds:(seeds_of cfg "wafer-mc")
           ~dies:m.mc_dies ~weights:scaled_weights ~firsts:voltage_firsts
           ~points ()))

let stage_bootstrap graph cfg replicates ~n_vectors ~t_firsts ~theta_firsts
    ~theta_weights ~universe_key ~faultsim_key ~ifa_key ~swift_key =
  Stage.run graph ~stage:"bootstrap-fit" ~codec:Artifact.bootstrap_fit
    ~config:(bootstrap_config cfg replicates)
    ~inputs:[ universe_key; faultsim_key; ifa_key; swift_key ]
    (fun () ->
      artifact_of_bootstrap
        (Bootstrap.run ~fit_points:fit_sample_points
           ~seeds:(seeds_of cfg "bootstrap-fit")
           ~replicates ~yield:cfg.target_yield ~t_firsts ~theta_firsts
           ~theta_weights ~n_vectors ()))

(* 9/10. n-detection (PR: Dl_ndet).  The ndet-sim stage profiles the SAME
   atpg vector sequence under a detection quota, so its n = 1 slice is
   bit-identical to fault-sim's first detections; ndet-atpg generates the
   registered n-detection test set. *)

let stage_ndet_sim graph cfg n ~c ~stuck_faults ~vectors ~mapping_key
    ~universe_key ~atpg_key =
  Stage.run graph ~stage:"ndet-sim" ~codec:Artifact.ndet_profile
    ~config:(ndet_sim_config cfg n)
    ~inputs:[ mapping_key; universe_key; atpg_key ]
    (fun () ->
      let nd =
        Dl_fault.Fault_sim.run_ndet ~engine:cfg.sim_engine
          ~domains:cfg.domains ?pool:cfg.pool ~drop_after:n c
          ~faults:stuck_faults ~vectors
      in
      {
        Artifact.nd_drop_after = nd.drop_after;
        nd_counts = nd.counts;
        nd_detections = nd.detections;
        nd_vectors_applied = nd.vectors_applied;
        nd_gate_evaluations = nd.gate_evaluations;
        nd_sim_stats = nd.stats;
      })

let profile_of_artifact ~stuck_faults (a : Artifact.ndet_profile) :
    Dl_fault.Fault_sim.ndet =
  {
    Dl_fault.Fault_sim.faults = stuck_faults;
    drop_after = a.Artifact.nd_drop_after;
    counts = a.nd_counts;
    detections = a.nd_detections;
    vectors_applied = a.nd_vectors_applied;
    gate_evaluations = a.nd_gate_evaluations;
    stats = a.nd_sim_stats;
  }

let stage_ndet_atpg graph cfg n ~c ~stuck_faults ~mapping_key ~universe_key =
  Stage.run graph ~stage:"ndet-atpg" ~codec:Artifact.ndet_atpg
    ~config:(ndet_atpg_config cfg n)
    ~inputs:[ mapping_key; universe_key ]
    (fun () ->
      let r =
        Dl_ndet.Atpg_n.run ~seed:cfg.seed ~max_random:cfg.max_random_vectors
          ~engine:cfg.sim_engine ~n c ~faults:stuck_faults
      in
      {
        Artifact.na_vectors = r.Dl_ndet.Atpg_n.vectors;
        na_counts = r.counts;
        na_stats = r.stats;
        na_untestable_faults = r.untestable_faults;
        na_aborted_faults = r.aborted_faults;
      })

(* The stage decomposition of the paper's flow.  Each stage's key digests
   its input artifact keys, its config fingerprint and its codec version,
   so a warm run re-executes only stages whose keys changed:

     netlist (content key of the input circuit)
       -> mapping        (cell decomposition)
       -> atpg           [seed, max_random_vectors]
       -> fault-universe [collapse_faults]
       -> fault-sim      (gate-level PPSFP; domains excluded: results are
                          bit-identical at any domain count)
       -> layout-ifa     [defect stats, min_weight_ratio, rows]
       -> swift          (switch-level realistic simulation)
       -> projection     [target_yield, fit points] (susceptibility fit +
                          summary; the only stage a yield change reruns)
       -> wafer-mc       [dies, wafer/lot shape, alphas, points, yield]
                          (optional; Monte-Carlo DL bands)
       -> bootstrap-fit  [replicates, fit points, yield]
                          (optional; CIs on (R, θmax) and alpha)
       -> ndet-sim       [n, engine] (optional; multi-detect profile of
                          the atpg sequence)
       -> ndet-atpg      [n, seed, max_random_vectors]
                          (optional; the n-detection test set)
*)
let run cfg =
  let graph = graph_of_config cfg in
  let c, mapping_key = stage_mapping graph cfg in
  let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
  let vectors = atpg_art.Artifact.vectors in
  let stuck_faults, universe_key =
    stage_universe graph cfg ~c ~atpg_art ~mapping_key ~atpg_key
  in
  let sim_art, faultsim_key =
    stage_faultsim graph cfg ~c ~stuck_faults ~vectors ~mapping_key
      ~universe_key ~atpg_key
  in
  let t_curve = Coverage.make sim_art.Artifact.first_detection in
  let mapping = Dl_cell.Mapping.flatten c in
  let layout = Dl_layout.Layout.synthesize ?rows:cfg.rows mapping in
  let ifa_art, ifa_key = stage_ifa graph cfg ~layout ~mapping_key in
  let extraction =
    {
      Ifa.layout;
      faults = ifa_art.Artifact.faults;
      gross_weight = ifa_art.Artifact.gross_weight;
      summaries = ifa_art.Artifact.summaries;
    }
  in
  (* 5. Scale the extracted weights so eq. 5 matches the target yield. *)
  let raw_weights =
    Array.map (fun (f : Realistic.t) -> f.weight) extraction.faults
  in
  let scaled_weights, scale_factor =
    Weighted.scale_to_yield ~weights:raw_weights ~target_yield:cfg.target_yield
  in
  let swift_art, swift_key =
    stage_swift graph ~mapping ~faults:extraction.faults ~vectors
      ~mapping_key ~ifa_key ~atpg_key
  in
  let swift_result =
    {
      Swift.faults = extraction.faults;
      detection = swift_art.Artifact.detection;
      vectors_applied = swift_art.Artifact.vectors_applied;
      region_solves = swift_art.Artifact.region_solves;
    }
  in
  let voltage_firsts =
    Array.map (fun (d : Swift.detection) -> d.voltage) swift_result.detection
  in
  let theta_curve = Coverage.make ~weights:scaled_weights voltage_firsts in
  let gamma_curve = Coverage.make voltage_firsts in
  let theta_iddq_curve =
    let firsts =
      Array.map
        (fun (d : Swift.detection) ->
          match (d.voltage, d.iddq) with
          | Some a, Some b -> Some (min a b)
          | (Some _ as x), None | None, (Some _ as x) -> x
          | None, None -> None)
        swift_result.detection
    in
    Coverage.make ~weights:scaled_weights firsts
  in
  (* 7. Susceptibility fit and summary (the only stage a target-yield or
     fit-resolution change invalidates). *)
  let n = Array.length vectors in
  let summary_art, _projection_key =
    Stage.run graph ~stage:"projection" ~codec:Artifact.summary
      ~config:(projection_config cfg)
      ~inputs:[ universe_key; faultsim_key; ifa_key; swift_key ]
      (fun () ->
        let ks = Coverage.log_spaced ~max:n ~points:fit_sample_points in
        let samples =
          Array.map
            (fun k -> (Coverage.at t_curve k, Coverage.at theta_curve k))
            ks
        in
        let fit = Projection.fit_theta samples in
        let text =
          Format.asprintf
            "experiment %s: %d vectors (%d random + %d deterministic), %d \
             stuck faults (T final %.4f), %d realistic faults (Θ final %.4f, \
             Γ final %.4f, Θ+IDDQ %.4f), Y scaled by %.3e to %.2f"
            c.title n atpg_art.Artifact.stats.random_vectors
            atpg_art.Artifact.stats.deterministic_vectors
            (Array.length stuck_faults)
            (Coverage.at t_curve n)
            (Array.length extraction.faults)
            (Coverage.at theta_curve n)
            (Coverage.at gamma_curve n)
            (Coverage.at theta_iddq_curve n)
            scale_factor cfg.target_yield
        in
        {
          Artifact.text;
          fit_r = fit.params.r;
          fit_theta_max = fit.params.theta_max;
          fit_rmse = fit.rmse;
          fit_rmse_log10 = (fit.rmse_scale = Projection.Log10);
          scale_factor;
        })
  in
  let fit =
    {
      Projection.params =
        {
          Projection.r = summary_art.Artifact.fit_r;
          theta_max = summary_art.Artifact.fit_theta_max;
        };
      rmse = summary_art.Artifact.fit_rmse;
      rmse_scale =
        (if summary_art.Artifact.fit_rmse_log10 then Projection.Log10
         else Projection.Linear);
    }
  in
  let wafer_mc =
    Option.map
      (fun m ->
        let art, _ =
          stage_wafer_mc graph cfg m ~n_vectors:n ~scaled_weights
            ~voltage_firsts ~theta_curve ~atpg_key ~ifa_key ~swift_key
        in
        wafer_mc_of_artifact art)
      cfg.mc
  in
  let bootstrap_fit =
    Option.map
      (fun k ->
        let art, _ =
          stage_bootstrap graph cfg k ~n_vectors:n
            ~t_firsts:sim_art.Artifact.first_detection
            ~theta_firsts:voltage_firsts ~theta_weights:scaled_weights
            ~universe_key ~faultsim_key ~ifa_key ~swift_key
        in
        bootstrap_of_artifact art)
      cfg.bootstrap
  in
  let ndet =
    Option.map
      (fun ndet_n ->
        let prof_art, _ =
          stage_ndet_sim graph cfg ndet_n ~c ~stuck_faults ~vectors
            ~mapping_key ~universe_key ~atpg_key
        in
        let profile = profile_of_artifact ~stuck_faults prof_art in
        let gen_art, _ =
          stage_ndet_atpg graph cfg ndet_n ~c ~stuck_faults ~mapping_key
            ~universe_key
        in
        let dl_n =
          Dl_n.analyze ~fit_points:fit_sample_points ~profile ~theta_curve
            ~yield:cfg.target_yield ~n_vectors:n ()
        in
        {
          ndet_n;
          profile;
          dl_n;
          gen_vectors = gen_art.Artifact.na_vectors;
          gen_counts = gen_art.Artifact.na_counts;
          gen_stats = gen_art.Artifact.na_stats;
        })
      cfg.ndet
  in
  {
    cfg;
    mapped_circuit = c;
    vectors;
    atpg_stats = atpg_art.Artifact.stats;
    stuck_faults;
    sim_stats = sim_art.Artifact.sim_stats;
    extraction;
    scale_factor;
    yield = cfg.target_yield;
    scaled_weights;
    t_curve;
    theta_curve;
    gamma_curve;
    theta_iddq_curve;
    swift_result;
    fit;
    wafer_mc;
    bootstrap_fit;
    ndet;
    summary = summary_art.Artifact.text;
    stage_reports = Stage.reports graph;
  }

(* One stage plus its dependency closure — what a cluster worker executes
   for a [serve-stage] request.  Everything upstream of the requested
   stage runs through the same graph, so with a warm (or peer-fed) store
   the closure collapses to cache hits and only the requested stage
   computes.  ["projection"] needs every artifact plus live curves, so it
   simply delegates to [run]. *)
let run_stage cfg ~stage =
  match stage with
  | "projection" -> (run cfg).stage_reports
  | _ ->
      let graph = graph_of_config cfg in
      (match stage with
      | "mapping" -> ignore (stage_mapping graph cfg)
      | "atpg" ->
          let c, mapping_key = stage_mapping graph cfg in
          ignore (stage_atpg graph cfg ~c ~mapping_key)
      | "fault-universe" ->
          let c, mapping_key = stage_mapping graph cfg in
          let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
          ignore
            (stage_universe graph cfg ~c ~atpg_art ~mapping_key ~atpg_key)
      | "fault-sim" ->
          let c, mapping_key = stage_mapping graph cfg in
          let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
          let stuck_faults, universe_key =
            stage_universe graph cfg ~c ~atpg_art ~mapping_key ~atpg_key
          in
          ignore
            (stage_faultsim graph cfg ~c ~stuck_faults
               ~vectors:atpg_art.Artifact.vectors ~mapping_key ~universe_key
               ~atpg_key)
      | "layout-ifa" ->
          let c, mapping_key = stage_mapping graph cfg in
          let mapping = Dl_cell.Mapping.flatten c in
          let layout = Dl_layout.Layout.synthesize ?rows:cfg.rows mapping in
          ignore (stage_ifa graph cfg ~layout ~mapping_key)
      | "swift" ->
          let c, mapping_key = stage_mapping graph cfg in
          let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
          let mapping = Dl_cell.Mapping.flatten c in
          let layout = Dl_layout.Layout.synthesize ?rows:cfg.rows mapping in
          let ifa_art, ifa_key = stage_ifa graph cfg ~layout ~mapping_key in
          ignore
            (stage_swift graph ~mapping ~faults:ifa_art.Artifact.faults
               ~vectors:atpg_art.Artifact.vectors ~mapping_key ~ifa_key
               ~atpg_key)
      | "wafer-mc" ->
          let m =
            match cfg.mc with
            | Some m -> m
            | None ->
                invalid_arg
                  "Experiment.run_stage: wafer-mc requested but cfg.mc is None"
          in
          let c, mapping_key = stage_mapping graph cfg in
          let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
          let mapping = Dl_cell.Mapping.flatten c in
          let layout = Dl_layout.Layout.synthesize ?rows:cfg.rows mapping in
          let ifa_art, ifa_key = stage_ifa graph cfg ~layout ~mapping_key in
          let swift_art, swift_key =
            stage_swift graph ~mapping ~faults:ifa_art.Artifact.faults
              ~vectors:atpg_art.Artifact.vectors ~mapping_key ~ifa_key
              ~atpg_key
          in
          let raw_weights =
            Array.map (fun (f : Realistic.t) -> f.weight) ifa_art.Artifact.faults
          in
          let scaled_weights, _ =
            Weighted.scale_to_yield ~weights:raw_weights
              ~target_yield:cfg.target_yield
          in
          let voltage_firsts =
            Array.map
              (fun (d : Swift.detection) -> d.voltage)
              swift_art.Artifact.detection
          in
          let theta_curve = Coverage.make ~weights:scaled_weights voltage_firsts in
          ignore
            (stage_wafer_mc graph cfg m
               ~n_vectors:(Array.length atpg_art.Artifact.vectors)
               ~scaled_weights ~voltage_firsts ~theta_curve ~atpg_key ~ifa_key
               ~swift_key)
      | "bootstrap-fit" ->
          let replicates =
            match cfg.bootstrap with
            | Some k -> k
            | None ->
                invalid_arg
                  "Experiment.run_stage: bootstrap-fit requested but \
                   cfg.bootstrap is None"
          in
          let c, mapping_key = stage_mapping graph cfg in
          let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
          let stuck_faults, universe_key =
            stage_universe graph cfg ~c ~atpg_art ~mapping_key ~atpg_key
          in
          let sim_art, faultsim_key =
            stage_faultsim graph cfg ~c ~stuck_faults
              ~vectors:atpg_art.Artifact.vectors ~mapping_key ~universe_key
              ~atpg_key
          in
          let mapping = Dl_cell.Mapping.flatten c in
          let layout = Dl_layout.Layout.synthesize ?rows:cfg.rows mapping in
          let ifa_art, ifa_key = stage_ifa graph cfg ~layout ~mapping_key in
          let swift_art, swift_key =
            stage_swift graph ~mapping ~faults:ifa_art.Artifact.faults
              ~vectors:atpg_art.Artifact.vectors ~mapping_key ~ifa_key
              ~atpg_key
          in
          let raw_weights =
            Array.map (fun (f : Realistic.t) -> f.weight) ifa_art.Artifact.faults
          in
          let scaled_weights, _ =
            Weighted.scale_to_yield ~weights:raw_weights
              ~target_yield:cfg.target_yield
          in
          let voltage_firsts =
            Array.map
              (fun (d : Swift.detection) -> d.voltage)
              swift_art.Artifact.detection
          in
          ignore
            (stage_bootstrap graph cfg replicates
               ~n_vectors:(Array.length atpg_art.Artifact.vectors)
               ~t_firsts:sim_art.Artifact.first_detection
               ~theta_firsts:voltage_firsts ~theta_weights:scaled_weights
               ~universe_key ~faultsim_key ~ifa_key ~swift_key)
      | "ndet-sim" ->
          let n =
            match cfg.ndet with
            | Some n -> n
            | None ->
                invalid_arg
                  "Experiment.run_stage: ndet-sim requested but cfg.ndet is \
                   None"
          in
          let c, mapping_key = stage_mapping graph cfg in
          let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
          let stuck_faults, universe_key =
            stage_universe graph cfg ~c ~atpg_art ~mapping_key ~atpg_key
          in
          ignore
            (stage_ndet_sim graph cfg n ~c ~stuck_faults
               ~vectors:atpg_art.Artifact.vectors ~mapping_key ~universe_key
               ~atpg_key)
      | "ndet-atpg" ->
          let n =
            match cfg.ndet with
            | Some n -> n
            | None ->
                invalid_arg
                  "Experiment.run_stage: ndet-atpg requested but cfg.ndet is \
                   None"
          in
          let c, mapping_key = stage_mapping graph cfg in
          let atpg_art, atpg_key = stage_atpg graph cfg ~c ~mapping_key in
          let stuck_faults, universe_key =
            stage_universe graph cfg ~c ~atpg_art ~mapping_key ~atpg_key
          in
          ignore
            (stage_ndet_atpg graph cfg n ~c ~stuck_faults ~mapping_key
               ~universe_key)
      | other ->
          invalid_arg
            (Printf.sprintf "Experiment.run_stage: unknown stage %S" other));
      Stage.reports graph

let defect_level_at t k =
  Weighted.defect_level ~yield:t.yield ~theta:(Coverage.at t.theta_curve k)

let sample_ks t ~points =
  Coverage.log_spaced ~max:(Array.length t.vectors) ~points

let coverage_rows t ~ks =
  Array.map
    (fun k ->
      ( k,
        Coverage.at t.t_curve k,
        Coverage.at t.theta_curve k,
        Coverage.at t.gamma_curve k ))
    ks

let dl_vs_t_points t ~ks =
  Array.map (fun k -> (Coverage.at t.t_curve k, defect_level_at t k)) ks

let dl_vs_gamma_points t ~ks =
  Array.map (fun k -> (Coverage.at t.gamma_curve k, defect_level_at t k)) ks

let fit_params t ?(points = fit_sample_points) () =
  let ks = sample_ks t ~points in
  let samples =
    Array.map (fun k -> (Coverage.at t.t_curve k, Coverage.at t.theta_curve k)) ks
  in
  Projection.fit_theta samples

let pp_summary ppf t = Format.pp_print_string ppf t.summary
