open Dl_netlist
module Coverage = Dl_fault.Coverage
module Ifa = Dl_extract.Ifa
module Realistic = Dl_switch.Realistic
module Swift = Dl_switch.Swift

type config = {
  circuit : Circuit.t;
  seed : int;
  max_random_vectors : int;
  target_yield : float;
  stats : Dl_extract.Defect_stats.t;
  min_weight_ratio : float;
  rows : int option;
  domains : int;
  collapse_faults : bool;
}

let config ?(seed = 7) ?(max_random_vectors = 4096) ?(target_yield = 0.75)
    ?(stats = Dl_extract.Defect_stats.default) ?(min_weight_ratio = 0.0) ?rows
    ?(domains = Dl_util.Parallel.default_domains ())
    ?(collapse_faults = true) circuit =
  if not (target_yield > 0.0 && target_yield < 1.0) then
    invalid_arg "Experiment.config: target yield must be in (0, 1)";
  if domains < 1 then invalid_arg "Experiment.config: domains must be >= 1";
  { circuit; seed; max_random_vectors; target_yield; stats; min_weight_ratio;
    rows; domains; collapse_faults }

type t = {
  cfg : config;
  mapped_circuit : Circuit.t;
  vectors : bool array array;
  atpg_stats : Dl_atpg.Atpg.stats;
  stuck_faults : Dl_fault.Stuck_at.t array;
  extraction : Ifa.extraction;
  scale_factor : float;
  yield : float;
  scaled_weights : float array;
  t_curve : Coverage.t;
  theta_curve : Coverage.t;
  gamma_curve : Coverage.t;
  theta_iddq_curve : Coverage.t;
  swift_result : Swift.result;
}

let run cfg =
  (* 1. Technology-map the netlist. *)
  let c = Transform.decompose_for_cells cfg.circuit in
  (* 2. Test generation: random prefix then deterministic top-up. *)
  let atpg, all_stuck_faults =
    Dl_atpg.Atpg.full_flow ~seed:cfg.seed ~max_random:cfg.max_random_vectors c
  in
  let vectors = atpg.vectors in
  (* The paper neglects redundant stuck-at faults ("so that T(k) -> 1 when
     k -> infinity"); drop the PODEM-proven-redundant ones from the T
     denominator.  Aborted faults stay: they are potentially testable.

     ATPG always works on the collapsed universe ([full_flow] collapses),
     which is also what we simulate by default: one representative per
     equivalence class, every class weighing the same in T(k).  With
     [collapse_faults = false] the paper-faithful uncollapsed universe is
     simulated instead — every line fault counts individually, so a class
     with many equivalent members weighs proportionally more in the
     coverage denominator (the classical uncollapsed coverage definition).
     Final coverage is typically close but NOT identical between the two.
     A PODEM-proved-redundant representative proves its whole equivalence
     class redundant, so in uncollapsed mode the untestable filter expands
     each untestable representative to its full class. *)
  let stuck_faults =
    if cfg.collapse_faults then
      Array.of_seq
        (Seq.filter
           (fun f ->
             not
               (Array.exists
                  (fun u -> Dl_fault.Stuck_at.equal u f)
                  atpg.untestable_faults))
           (Array.to_seq all_stuck_faults))
    else begin
      let universe = Dl_fault.Stuck_at.universe c in
      let classes = Dl_fault.Stuck_at.equivalence_classes c universe in
      let untestable_members =
        classes |> Array.to_seq
        |> Seq.filter (fun cls ->
               Array.exists
                 (fun u -> Dl_fault.Stuck_at.equal u cls.(0))
                 atpg.untestable_faults)
        |> Seq.concat_map Array.to_seq
        |> List.of_seq
      in
      Array.of_seq
        (Seq.filter
           (fun f ->
             not (List.exists (Dl_fault.Stuck_at.equal f) untestable_members))
           (Array.to_seq universe))
    end
  in
  (* 3. Gate-level stuck-at fault simulation over the same sequence
     (parallel engine; bit-for-bit identical to the serial one). *)
  let sim =
    Dl_fault.Fault_sim.run_parallel ~domains:cfg.domains c ~faults:stuck_faults
      ~vectors
  in
  let t_curve = Coverage.make sim.first_detection in
  (* 4. Layout synthesis and inductive fault analysis. *)
  let mapping = Dl_cell.Mapping.flatten c in
  let layout = Dl_layout.Layout.synthesize ?rows:cfg.rows mapping in
  let extraction =
    Ifa.extract ~stats:cfg.stats ~min_weight_ratio:cfg.min_weight_ratio layout
  in
  (* 5. Scale the extracted weights so eq. 5 matches the target yield. *)
  let raw_weights = Array.map (fun (f : Realistic.t) -> f.weight) extraction.faults in
  let scaled_weights, scale_factor =
    Weighted.scale_to_yield ~weights:raw_weights ~target_yield:cfg.target_yield
  in
  (* 6. Switch-level realistic fault simulation. *)
  let network = Dl_switch.Network.build mapping in
  let swift_result = Swift.run network ~faults:extraction.faults ~vectors in
  let voltage_firsts =
    Array.map (fun (d : Swift.detection) -> d.voltage) swift_result.detection
  in
  let theta_curve = Coverage.make ~weights:scaled_weights voltage_firsts in
  let gamma_curve = Coverage.make voltage_firsts in
  let theta_iddq_curve =
    let firsts =
      Array.map
        (fun (d : Swift.detection) ->
          match (d.voltage, d.iddq) with
          | Some a, Some b -> Some (min a b)
          | (Some _ as x), None | None, (Some _ as x) -> x
          | None, None -> None)
        swift_result.detection
    in
    Coverage.make ~weights:scaled_weights firsts
  in
  {
    cfg;
    mapped_circuit = c;
    vectors;
    atpg_stats = atpg.stats;
    stuck_faults;
    extraction;
    scale_factor;
    yield = cfg.target_yield;
    scaled_weights;
    t_curve;
    theta_curve;
    gamma_curve;
    theta_iddq_curve;
    swift_result;
  }

let defect_level_at t k =
  Weighted.defect_level ~yield:t.yield ~theta:(Coverage.at t.theta_curve k)

let sample_ks t ~points =
  Coverage.log_spaced ~max:(Array.length t.vectors) ~points

let coverage_rows t ~ks =
  Array.map
    (fun k ->
      ( k,
        Coverage.at t.t_curve k,
        Coverage.at t.theta_curve k,
        Coverage.at t.gamma_curve k ))
    ks

let dl_vs_t_points t ~ks =
  Array.map (fun k -> (Coverage.at t.t_curve k, defect_level_at t k)) ks

let dl_vs_gamma_points t ~ks =
  Array.map (fun k -> (Coverage.at t.gamma_curve k, defect_level_at t k)) ks

let fit_params t ?(points = 100) () =
  let ks = sample_ks t ~points in
  let samples =
    Array.map (fun k -> (Coverage.at t.t_curve k, Coverage.at t.theta_curve k)) ks
  in
  Projection.fit_theta samples

let pp_summary ppf t =
  let n = Array.length t.vectors in
  Format.fprintf ppf
    "experiment %s: %d vectors (%d random + %d deterministic), %d stuck faults \
     (T final %.4f), %d realistic faults (Θ final %.4f, Γ final %.4f, Θ+IDDQ \
     %.4f), Y scaled by %.3e to %.2f"
    t.mapped_circuit.title n t.atpg_stats.random_vectors
    t.atpg_stats.deterministic_vectors
    (Array.length t.stuck_faults)
    (Coverage.at t.t_curve n)
    (Array.length t.extraction.faults)
    (Coverage.at t.theta_curve n)
    (Coverage.at t.gamma_curve n)
    (Coverage.at t.theta_iddq_curve n)
    t.scale_factor t.yield
