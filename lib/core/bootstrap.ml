module Seeds = Dl_util.Seeds
module Rng = Dl_util.Rng
module Stats = Dl_util.Stats
module Coverage = Dl_fault.Coverage

type ci = { lo : float; median : float; hi : float }

type t = {
  replicates : int;
  fit_points : int;
  point : Projection.fit;
  alpha_point : float;
  r : ci;
  theta_max : ci;
  alpha : ci;
  r_samples : float array;
  theta_max_samples : float array;
  alpha_samples : float array;
}

let ci_of_samples xs =
  {
    lo = Stats.quantile xs 0.05;
    median = Stats.quantile xs 0.50;
    hi = Stats.quantile xs 0.95;
  }

let contains ci x = ci.lo <= x && x <= ci.hi

(* Rebuild a result from its persisted parts (the [bootstrap-fit] stage
   artifact stores the samples; the quantile summaries are pure functions
   of them). *)
let of_samples ~fit_points ~point ~alpha_point ~r_samples ~theta_max_samples
    ~alpha_samples =
  let replicates = Array.length r_samples in
  if replicates = 0 then invalid_arg "Bootstrap.of_samples: no samples";
  if
    Array.length theta_max_samples <> replicates
    || Array.length alpha_samples <> replicates
  then invalid_arg "Bootstrap.of_samples: sample arrays differ in length";
  {
    replicates;
    fit_points;
    point;
    alpha_point;
    r = ci_of_samples r_samples;
    theta_max = ci_of_samples theta_max_samples;
    alpha = ci_of_samples alpha_samples;
    r_samples;
    theta_max_samples;
    alpha_samples;
  }

(* One (T(k), Θ(k)) sample grid plus the derived (T, DL) points the alpha
   fit consumes — shared by the point estimate and every replicate. *)
let curves_at ~yield ~ks ~t_curve ~theta_curve =
  let samples =
    Array.map (fun k -> (Coverage.at t_curve k, Coverage.at theta_curve k)) ks
  in
  let dl_points =
    Array.to_list
      (Array.map
         (fun (t, theta) -> (t, Weighted.defect_level ~yield ~theta))
         samples)
  in
  (samples, dl_points)

let resample rng a =
  let n = Array.length a in
  Array.init n (fun _ -> a.(Rng.int rng n))

let run ?(fit_points = 100) ~seeds ~replicates ~yield ~t_firsts ~theta_firsts
    ~theta_weights ~n_vectors () =
  if replicates <= 0 then
    invalid_arg "Bootstrap.run: replicates must be positive";
  if not (yield > 0.0 && yield <= 1.0) then
    invalid_arg "Bootstrap.run: yield must be in (0, 1]";
  if Array.length t_firsts = 0 then
    invalid_arg "Bootstrap.run: empty stuck-at detection data";
  let nr = Array.length theta_firsts in
  if nr = 0 then invalid_arg "Bootstrap.run: empty realistic detection data";
  if Array.length theta_weights <> nr then
    invalid_arg "Bootstrap.run: theta firsts and weights differ in length";
  if n_vectors < 1 then invalid_arg "Bootstrap.run: n_vectors must be >= 1";
  let ks = Coverage.log_spaced ~max:n_vectors ~points:fit_points in
  let point_of ~t_curve ~theta_curve ~fit_f ~alpha_init =
    let samples, dl_points = curves_at ~yield ~ks ~t_curve ~theta_curve in
    let fit = fit_f samples in
    let alpha, _ = Clustered.fit_alpha ?init:alpha_init ~yield dl_points in
    (fit, alpha)
  in
  (* Full-data point estimate: the expensive multi-start fit, whose optimum
     then seeds every replicate's single-start refit. *)
  let point, alpha_point =
    point_of
      ~t_curve:(Coverage.make t_firsts)
      ~theta_curve:(Coverage.make ~weights:theta_weights theta_firsts)
      ~fit_f:Projection.fit_theta ~alpha_init:None
  in
  let r_samples = Array.make replicates 0.0 in
  let theta_max_samples = Array.make replicates 0.0 in
  let alpha_samples = Array.make replicates 0.0 in
  for i = 0 to replicates - 1 do
    let rng = Seeds.stream seeds (Printf.sprintf "rep-%d" i) in
    (* Case resampling: redraw the stuck-at universe and the realistic
       fault population (weight and detection move together) with
       replacement, rebuild both coverage curves, refit. *)
    let t_curve = Coverage.make (resample rng t_firsts) in
    let idx = Array.init nr (fun _ -> Rng.int rng nr) in
    let theta_curve =
      Coverage.make
        ~weights:(Array.map (fun j -> theta_weights.(j)) idx)
        (Array.map (fun j -> theta_firsts.(j)) idx)
    in
    let fit, alpha =
      point_of ~t_curve ~theta_curve
        ~fit_f:(Projection.fit_theta_from ~init:point.Projection.params)
        ~alpha_init:(Some alpha_point)
    in
    r_samples.(i) <- fit.Projection.params.r;
    theta_max_samples.(i) <- fit.Projection.params.theta_max;
    alpha_samples.(i) <- alpha
  done;
  {
    replicates;
    fit_points;
    point;
    alpha_point;
    r = ci_of_samples r_samples;
    theta_max = ci_of_samples theta_max_samples;
    alpha = ci_of_samples alpha_samples;
    r_samples;
    theta_max_samples;
    alpha_samples;
  }
