(** DL(n): defect-level projections under n-detection coverage.

    A multi-detect profile at quota [N] carries the whole curve family
    T{_1}(k) ... T{_N}(k) (a fault counts towards T{_n} once its n-th
    detection has happened), so one simulation yields an eq. 9/11 refit
    per n and a dl-vs-n table: requiring each fault to be detected n
    times pushes the same stuck-at coverage threshold later in the
    sequence, where the realistic coverage Θ is higher and the projected
    defect level correspondingly lower — the n-detection effect of
    Pomeranz & Reddy expressed in the 1994 model's terms. *)

type row = {
  n : int;
  final_t : float;  (** T{_n} over the whole vector sequence. *)
  fit : Projection.fit;
      (** eq. 9 refit of [(T{_n}(k), Θ(k))] samples for this n. *)
  residual_dl : float;
      (** [1 - Y^(1-θmax{_n})]: the model floor under this n's fit. *)
  k_at_target : int;
      (** Smallest vector count with T{_n}(k) >= the shared target
          coverage {!t.t_star}. *)
  dl_at_target : float;
      (** Empirical DL at the shared coverage target: eq. 10 evaluated at
          Θ([k_at_target]).  Monotone non-increasing in n by construction
          (T{_n} is pointwise non-increasing in n and Θ non-decreasing
          in k). *)
}

type t = {
  max_n : int;  (** The profile's quota (curves exist for all n <= it). *)
  t_star : float;
      (** The shared coverage target: the smallest final T{_n} among the
          analyzed ns, so every row reaches it. *)
  yield : float;
  rows : row array;  (** One row per analyzed n, ascending. *)
}

val default_ns : max_n:int -> int array
(** Powers of two up to [max_n], always including 1 and [max_n] itself
    (e.g. [max_n:8] gives [1; 2; 4; 8], [max_n:6] gives [1; 2; 4; 6]). *)

val analyze :
  ?ns:int array ->
  ?fit_points:int ->
  profile:Dl_ndet.Profile.t ->
  theta_curve:Dl_fault.Coverage.t ->
  yield:float ->
  n_vectors:int ->
  unit ->
  t
(** Build the dl-vs-n table.  [ns] defaults to {!default_ns}; every
    entry must be in [1, max_n profile].  [fit_points] (default 100,
    matching {!Experiment.fit_params}) controls the log-spaced sample
    grid, so at [n:1] the fitted parameters are bit-identical to the
    single-detection pipeline fit over the same curves. *)
