(** Monte-Carlo wafer/lot yield simulator over the IFA weight universe.

    The paper's projections are point estimates: Poisson yield
    [Y = exp(-sum w_j)] through eq. 3 gives one DL(T) number per coverage.
    This module instead *samples* production under the multilevel clustered
    fault model of Bogdanov et al.:

    - every {b lot} draws a mean-1 gamma severity [g_L ~ Gamma(alpha_lot) /
      alpha_lot];
    - every {b wafer} in it draws [g_W ~ Gamma(alpha_wafer) / alpha_wafer];
    - every {b die} draws a defect count [N ~ Poisson(g_L * g_W * W)] with
      [W = sum w_j], each defect landing on realistic fault [j] with
      probability [w_j / W].

    Marginally the per-die defect count is the doubly-gamma-mixed Poisson
    whose single-level case is {!Dl_util.Prob.negative_binomial_pmf} /
    {!Yield_model.negative_binomial}; [alpha = infinity] at both levels
    degenerates to the paper's independent-Poisson model, so the mean DL
    converges to {!Weighted.defect_level} (property-checked by the
    [mc-poisson-limit] oracle).

    A die is {e defective} iff [N >= 1] and {e passes} the test at vector
    count [k] iff none of its faults is detected before [k] (first-detection
    convention of {!Dl_fault.Coverage}: detected at [k] iff [first < k]).
    DL(k) = defective-and-passed / passed.  Each wafer contributes one DL
    sample per coverage point; the 5/50/95% quantiles over wafers form the
    confidence band around the pooled point estimate.

    All randomness comes from path-keyed {!Dl_util.Seeds} streams
    ([lot-<l>], [wafer-<w>], [die-<d>] under the caller's scope), so a run
    is a pure function of (master seed, inputs) — replayable bit-for-bit,
    order-independent, and safe to cache as a stage artifact. *)

(** One coverage point of the simulated DL(T) curve. *)
type band = {
  k : int;             (** Vector count of this point. *)
  coverage : float;    (** The coverage label at [k] (caller-supplied). *)
  dl_point : float;    (** Pooled DL over all dies. *)
  dl_q05 : float;      (** 5% quantile of per-wafer DL samples. *)
  dl_q50 : float;
  dl_q95 : float;
  passed : int;              (** Dies passing the test at [k] (pooled). *)
  defective_passed : int;    (** Escapes at [k] (pooled). *)
  wafer_dls : float array;
      (** Per-wafer DL samples (wafers with at least one passing die), in
          wafer order — the empirical DL distribution at this point. *)
}

type t = {
  dies : int;
  dies_per_wafer : int;
  wafers_per_lot : int;
  wafers : int;              (** [ceil (dies / dies_per_wafer)]. *)
  lots : int;                (** [ceil (wafers / wafers_per_lot)]. *)
  alpha_wafer : float;
  alpha_lot : float;
  defective : int;           (** Dies with at least one fault. *)
  bands : band array;        (** One per requested coverage point, in order. *)
}

val simulate :
  ?dies_per_wafer:int ->
  ?wafers_per_lot:int ->
  ?alpha_wafer:float ->
  ?alpha_lot:float ->
  seeds:Dl_util.Seeds.t ->
  dies:int ->
  weights:float array ->
  firsts:int option array ->
  points:(int * float) array ->
  unit ->
  t
(** [simulate ~seeds ~dies ~weights ~firsts ~points ()] runs the lot/wafer/
    die hierarchy over the weighted fault universe.  [weights] are the
    (yield-scaled) realistic fault weights; [firsts] is the parallel
    first-detection array (e.g. swift voltage detections); [points] is the
    [(k, coverage_label)] grid to evaluate DL on.  Defaults: 256 dies per
    wafer, 4 wafers per lot, both alphas infinite (pure Poisson).
    @raise Invalid_argument on non-positive counts or alphas, negative
    weights, length mismatch, or an empty point grid. *)

val observed_yield : t -> float
(** Fraction of defect-free dies. *)

val histogram : ?bins:int -> band -> Dl_util.Histogram.t
(** Linear histogram of the per-wafer DL samples at one point (default 20
    bins over [0 .. max sample]). *)

val final_band : t -> band
(** The band at the last (highest-[k]) point. *)
