module Coverage = Dl_fault.Coverage
module Profile = Dl_ndet.Profile

type row = {
  n : int;
  final_t : float;
  fit : Projection.fit;
  residual_dl : float;
  k_at_target : int;
  dl_at_target : float;
}

type t = {
  max_n : int;
  t_star : float;
  yield : float;
  rows : row array;
}

let default_ns ~max_n =
  if max_n < 1 then invalid_arg "Dl_n.default_ns: max_n must be >= 1";
  let rec powers acc p =
    if p >= max_n then List.rev (max_n :: acc)
    else powers (p :: acc) (2 * p)
  in
  Array.of_list (powers [] 1)

(* Smallest k in [1, n_vectors] with coverage(k) >= target; coverage is
   non-decreasing in k so binary search applies.  [n_vectors] when even the
   full sequence falls short (only possible for target > final, which
   [analyze] never asks for). *)
let first_k_reaching curve ~n_vectors ~target =
  if Coverage.at curve n_vectors < target then n_vectors
  else begin
    let lo = ref 1 and hi = ref n_vectors in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Coverage.at curve mid >= target then hi := mid else lo := mid + 1
    done;
    !lo
  end

let analyze ?ns ?(fit_points = 100) ~profile ~theta_curve ~yield ~n_vectors () =
  let max_n = Profile.max_n profile in
  let ns = match ns with Some ns -> ns | None -> default_ns ~max_n in
  if Array.length ns = 0 then invalid_arg "Dl_n.analyze: empty ns";
  Array.iter
    (fun n ->
      if n < 1 || n > max_n then
        invalid_arg
          (Printf.sprintf "Dl_n.analyze: n = %d outside [1, %d]" n max_n))
    ns;
  if n_vectors < 1 then invalid_arg "Dl_n.analyze: n_vectors must be >= 1";
  let curves = Array.map (fun n -> (n, Profile.coverage profile ~n)) ns in
  let t_star =
    Array.fold_left
      (fun acc (_, curve) -> Float.min acc (Coverage.at curve n_vectors))
      1.0 curves
  in
  let ks = Coverage.log_spaced ~max:n_vectors ~points:fit_points in
  let rows =
    Array.map
      (fun (n, curve) ->
        let samples =
          Array.map
            (fun k -> (Coverage.at curve k, Coverage.at theta_curve k))
            ks
        in
        let fit = Projection.fit_theta samples in
        let k_at_target = first_k_reaching curve ~n_vectors ~target:t_star in
        {
          n;
          final_t = Coverage.at curve n_vectors;
          fit;
          residual_dl =
            Projection.residual_defect_level ~yield
              ~theta_max:fit.Projection.params.theta_max;
          k_at_target;
          dl_at_target =
            Weighted.defect_level ~yield
              ~theta:(Coverage.at theta_curve k_at_target);
        })
      curves
  in
  { max_n; t_star; yield; rows }
