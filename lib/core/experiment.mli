(** The paper's end-to-end experiment (section 3): netlist → standard-cell
    layout → layout fault extraction (*lift*) → stuck-at ATPG (random
    prefix + deterministic top-up) → gate-level stuck-at fault simulation
    [T(k)] and switch-level realistic fault simulation [Θ(k), Γ(k)] over
    the same vector sequence → defect-level projection and model fitting.

    One [run] produces everything Figs. 3-6 plot.

    [run] executes as an incremental stage graph ({!Dl_store.Stage}):
    mapping → atpg → fault-universe → fault-sim → layout-ifa → swift →
    projection.  With [cache_dir] set, every stage artifact is persisted
    content-addressed ({!Dl_store.Store}) and a re-run recomputes only the
    stages whose inputs or config actually changed — re-projecting at a
    different yield or sampling resolution reuses every simulation
    artifact. *)

open Dl_netlist

(** Monte-Carlo wafer-simulation knobs (the optional [wafer-mc] stage). *)
type mc = {
  mc_dies : int;             (** Total dies to simulate. *)
  mc_dies_per_wafer : int;
  mc_wafers_per_lot : int;
  mc_alpha_wafer : float;    (** Wafer-level clustering; [infinity] = none. *)
  mc_alpha_lot : float;      (** Lot-level clustering; [infinity] = none. *)
  mc_points : int;           (** Coverage points of the DL(T) band grid. *)
}

val mc :
  ?dies_per_wafer:int -> ?wafers_per_lot:int -> ?alpha_wafer:float ->
  ?alpha_lot:float -> ?points:int -> dies:int -> unit -> mc
(** Defaults: 256 dies per wafer, 4 wafers per lot, both alphas infinite
    (pure Poisson — the paper's model), 25 band points.
    @raise Invalid_argument on non-positive values. *)

type config = {
  circuit : Circuit.t;
  seed : int;
  max_random_vectors : int;
  target_yield : float;
      (** The extracted yield is rescaled to this value (paper: 0.75).
          Affects only the projection stage key — never a simulation. *)
  stats : Dl_extract.Defect_stats.t;
  min_weight_ratio : float;
      (** Realistic-fault pruning threshold (see {!Dl_extract.Ifa.extract}). *)
  rows : int option;  (** Layout row override. *)
  domains : int;
      (** Domain count for the gate-level fault simulation
          ({!Dl_fault.Fault_sim.run_parallel}); results are independent of
          this value, so it is excluded from every stage key. *)
  pool : Dl_util.Parallel.t option;
      (** When set, the fault simulation runs on this existing domain pool
          instead of spawning [domains] fresh ones — the serving path
          ({!Dl_serve}) keeps one long-lived pool per scheduler worker.
          Results are independent of the pool, so (like [domains]) it is
          excluded from every stage key. *)
  collapse_faults : bool;
      (** [true] (default): simulate the equivalence-collapsed stuck-at
          universe — one representative per class, every class weighing
          the same in T(k); this is what ATPG targets and is cheaper to
          simulate.  [false]: the paper-faithful uncollapsed universe —
          every line fault counts individually, so larger equivalence
          classes weigh proportionally more in the coverage denominator.
          The two coverage definitions agree in the limit (both reach 1 on
          a complete test set once redundant faults are excluded) but
          differ at intermediate [k]. *)
  sim_engine : Dl_fault.Fault_sim.engine;
      (** PPSFP engine variant for the gate-level fault simulation (default
          [Wide]).  Detection results are engine-independent, but the
          variant IS part of the fault-sim stage key: the cached artifact
          carries per-engine {!Dl_fault.Fault_sim.Stats} counters, so two
          engines must never alias one cache entry. *)
  cache_dir : string option;
      (** Root of the content-addressed artifact store; [None] (default)
          disables persistence (stages still execute and report keys). *)
  remote : Dl_store.Stage.remote option;
      (** Peer store tier for cluster fetch-through ({!Dl_cluster}): a
          local stage miss first asks peer stores, and a computed artifact
          is pushed to its key's home node.  Best-effort and
          result-invisible, so (like [pool]) it is excluded from every
          stage key. *)
  mc : mc option;
      (** When set, run the [wafer-mc] stage ({!Wafer_mc}).  The knobs
          fingerprint only that stage's key — toggling or re-tuning the MC
          never invalidates a simulation artifact. *)
  bootstrap : int option;
      (** When set, run the [bootstrap-fit] stage ({!Bootstrap}) with this
          many replicates.  Fingerprints only the bootstrap-fit key. *)
  ndet : int option;
      (** When set (the detection quota n), run the [ndet-sim] and
          [ndet-atpg] stages ({!Dl_ndet}): a multi-detect profile of the
          atpg sequence (yielding the DL(n) table for every n' <= n) plus
          a registered n-detection test set.  Fingerprints only the two
          ndet stage keys. *)
}

val config : ?seed:int -> ?max_random_vectors:int -> ?target_yield:float ->
  ?stats:Dl_extract.Defect_stats.t -> ?min_weight_ratio:float ->
  ?rows:int -> ?domains:int -> ?pool:Dl_util.Parallel.t ->
  ?collapse_faults:bool -> ?sim_engine:Dl_fault.Fault_sim.engine ->
  ?cache_dir:string -> ?remote:Dl_store.Stage.remote ->
  ?mc:mc -> ?bootstrap:int -> ?ndet:int -> Circuit.t -> config
(** Defaults: seed 7, 4096 random vectors, yield 0.75, Maly statistics, no
    pruning, [Domain.recommended_domain_count ()] domains (or [pool], which
    takes precedence), collapsed fault universe, [Wide] fault-sim engine,
    no cache, no Monte-Carlo stage, no bootstrap stage, no n-detection
    stages. *)

val stage_keys : config -> (string * string) list
(** [(stage, key)] for every stage of {!run}, in execution order, derived
    from the config alone — no stage is executed.  Equal to the keys in
    {!t.stage_reports} of an actual run of the same config (property-
    tested).  The root of the digest DAG is the content key of
    [cfg.circuit]; [domains], [pool] and [cache_dir] influence nothing.
    The optional [wafer-mc] / [bootstrap-fit] / [ndet-sim] / [ndet-atpg]
    stages appear (last) only when [cfg.mc] / [cfg.bootstrap] / [cfg.ndet]
    are set; their knobs fingerprint only their own keys. *)

val request_key : config -> string
(** The ["projection"] stage key: a single digest of everything that can
    change the core pipeline result of {!run} (circuit content, seed,
    vector budget, fault-universe mode, defect statistics, layout rows,
    pruning threshold, target yield).  Two configs with equal
    [request_key] produce bit-identical experiments — the coalescing key
    of {!Dl_serve}.  The optional statistical stages are not part of it;
    their own stage keys play that role for their artifacts. *)

(** The n-detection extension's live result (when [cfg.ndet] is set).
    [profile] is the multi-detect simulation of the SAME vector sequence
    the 1-detection flow applies — its n = 1 slice is bit-identical to
    {!t.t_curve}'s first detections — and [dl_n] the DL(n) table built
    from it; [gen_*] is the separately generated n-detection test set. *)
type ndet_result = {
  ndet_n : int;  (** = the configured quota. *)
  profile : Dl_fault.Fault_sim.ndet;
  dl_n : Dl_n.t;
  gen_vectors : bool array array;
  gen_counts : int array;  (** Per-fault counts on [gen_vectors], capped. *)
  gen_stats : Dl_ndet.Atpg_n.stats;
}

type t = {
  cfg : config;
  mapped_circuit : Circuit.t;  (** After decomposition for the cell library. *)
  vectors : bool array array;  (** The ATPG vector sequence, in order. *)
  atpg_stats : Dl_atpg.Atpg.stats;
  stuck_faults : Dl_fault.Stuck_at.t array;
      (** The simulated universe: collapsed representatives, or the full
          line-fault universe when [collapse_faults = false] (minus
          PODEM-proved-redundant classes in both cases). *)
  sim_stats : Dl_fault.Fault_sim.Stats.t;
      (** Engine counters of the gate-level fault-sim stage (cached with
          the detections artifact, so available on warm runs too). *)
  extraction : Dl_extract.Ifa.extraction;
  scale_factor : float;        (** Weight scaling applied for target yield. *)
  yield : float;               (** = [cfg.target_yield]. *)
  scaled_weights : float array;  (** Per realistic fault, after scaling. *)
  t_curve : Dl_fault.Coverage.t;       (** Stuck-at coverage T(k). *)
  theta_curve : Dl_fault.Coverage.t;   (** Weighted realistic Θ(k), voltage. *)
  gamma_curve : Dl_fault.Coverage.t;   (** Unweighted realistic Γ(k). *)
  theta_iddq_curve : Dl_fault.Coverage.t;
      (** Θ(k) when IDDQ accompanies every vector. *)
  swift_result : Dl_switch.Swift.result;
  fit : Projection.fit;
      (** The eq. 9 fit over {!fit_params}'s default sampling (cached with
          the projection stage). *)
  wafer_mc : Wafer_mc.t option;
      (** Monte-Carlo DL(T) bands when [cfg.mc] is set (cached as the
          [wafer-mc] stage, seeded from [cfg.seed]). *)
  bootstrap_fit : Bootstrap.t option;
      (** Bootstrap CIs on [(R, θmax)] and the clustering alpha when
          [cfg.bootstrap] is set (cached as the [bootstrap-fit] stage). *)
  ndet : ndet_result option;
      (** The n-detection profile, DL(n) table and generated test set when
          [cfg.ndet] is set (cached as the [ndet-sim] / [ndet-atpg]
          stages). *)
  summary : string;            (** What {!pp_summary} prints. *)
  stage_reports : Dl_store.Stage.report list;
      (** Per-stage key / hit-miss / timing of this run, execution order. *)
}

val run : config -> t

val run_stage : config -> stage:string -> Dl_store.Stage.report list
(** Execute one named stage (a {!stage_keys} name) plus its dependency
    closure, nothing downstream — the unit of work a cluster coordinator
    fans out.  With a warm or peer-fed store the upstream closure
    collapses to cache hits.  Returns the per-stage reports of the
    closure in execution order (the requested stage is last).
    ["projection"] is the whole pipeline and delegates to {!run}.
    @raise Invalid_argument on an unknown stage name. *)

val defect_level_at : t -> int -> float
(** [DL(Θ(k))] through eq. 3 with the scaled yield: the quantity the paper
    treats as the actual defect level. *)

val coverage_rows : t -> ks:int array -> (int * float * float * float) array
(** Fig. 4 data: [(k, T(k), Θ(k), Γ(k))]. *)

val dl_vs_t_points : t -> ks:int array -> (float * float) array
(** Fig. 5 scatter: [(T(k), DL(Θ(k)))]. *)

val dl_vs_gamma_points : t -> ks:int array -> (float * float) array
(** Fig. 6 scatter: [(Γ(k), DL(Θ(k)))]. *)

val fit_params : t -> ?points:int -> unit -> Projection.fit
(** Fit [(R, θmax)] on the [(T(k), Θ(k))] relation (eq. 9) over log-spaced
    sample counts (default 100).  At the default resolution this equals
    [t.fit]. *)

val sample_ks : t -> points:int -> int array
(** Log-spaced vector counts covering the applied sequence. *)

val pp_summary : Format.formatter -> t -> unit
