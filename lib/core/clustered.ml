let check ~yield ~alpha =
  if not (yield > 0.0 && yield <= 1.0) then
    invalid_arg "Clustered: yield must be in (0, 1]";
  if alpha <= 0.0 then invalid_arg "Clustered: alpha must be positive"

let mean_faults ~yield ~alpha =
  check ~yield ~alpha;
  (* P[N = 0] = (1 + m/alpha)^-alpha = Y. *)
  alpha *. ((yield ** (-1.0 /. alpha)) -. 1.0)

let defect_level ~yield ~alpha ~coverage =
  check ~yield ~alpha;
  if not (coverage >= 0.0 && coverage <= 1.0) then
    invalid_arg "Clustered.defect_level: coverage must be in [0, 1]";
  let m = mean_faults ~yield ~alpha in
  (* DL = 1 - P[N_undetected = 0 | N_detected = 0]
        = 1 - Y * (1 + m T / alpha)^alpha. *)
  let dl = 1.0 -. (yield *. ((1.0 +. (m *. coverage /. alpha)) ** alpha)) in
  Dl_util.Numerics.clamp01 dl

let defect_level_projected ~yield ~alpha ~params ~coverage =
  let theta = Projection.theta_of_coverage params coverage in
  defect_level ~yield ~alpha ~coverage:theta

let required_coverage ~yield ~alpha ~target_dl =
  check ~yield ~alpha;
  if not (target_dl >= 0.0 && target_dl < 1.0) then
    invalid_arg "Clustered.required_coverage: target must be in [0, 1)";
  if yield = 1.0 then 0.0
  else if target_dl >= 1.0 -. yield then 0.0
  else begin
    let m = mean_faults ~yield ~alpha in
    let t = alpha *. ((((1.0 -. target_dl) /. yield) ** (1.0 /. alpha)) -. 1.0) /. m in
    Dl_util.Numerics.clamp01 t
  end

let fit_alpha ?(init = 2.0) ~yield points =
  check ~yield ~alpha:init;
  if points = [] then invalid_arg "Clustered.fit_alpha: no points";
  (* Degenerate data (NaN coordinates, coverages outside [0,1]) would
     surface as a NaN optimum; reject it up front.  Single-point and
     zero-variance DL inputs degenerate gracefully to a finite rmse. *)
  List.iter
    (fun (t, dl) ->
      if Float.is_nan t || Float.is_nan dl then
        invalid_arg "Clustered.fit_alpha: NaN in data";
      if not (t >= 0.0 && t <= 1.0) then
        invalid_arg "Clustered.fit_alpha: coverage outside [0, 1]")
    points;
  let data = Dl_util.Fit.make_data points in
  (* Fit in log-alpha space: the effect of alpha spans decades. *)
  let lo = log 1e-2 and hi = log 1e6 in
  let init = Float.min hi (Float.max lo (log init)) in
  let model p t = defect_level ~yield ~alpha:(exp p.(0)) ~coverage:t in
  let r =
    Dl_util.Fit.curve_fit ~model ~lo:[| lo |] ~hi:[| hi |] ~init:[| init |]
      data
  in
  (exp r.params.(0), r.rmse)
