(** The paper's proposed defect-level model (eqs. 9-11): eliminating the
    vector count between the two coverage-growth laws gives

    {v Θ = θmax (1 - (1-T)^R) v}            (eq. 9)

    and substituting into the weighted model yields the headline equation

    {v DL(T) = 1 - Y^(1 - θmax (1 - (1-T)^R)) v}    (eq. 11)

    [R > 1] means the faults that dominate yield loss (bridges, under
    bridging-dominant defect statistics) are *easier* to detect than the
    average stuck-at fault; [θmax < 1] captures the incompleteness of
    voltage-only stuck-at testing and leaves the *residual defect level*
    [1 - Y^(1-θmax)] that no amount of such testing removes.  For
    [R = 1, θmax = 1] the model reduces exactly to Williams–Brown. *)

type params = { r : float; theta_max : float }

val theta_of_coverage : params -> float -> float
(** eq. 9. @raise Invalid_argument unless [r > 0], [0 < θmax <= 1] and the
    coverage is in [0,1]. *)

val defect_level : yield:float -> params:params -> coverage:float -> float
(** eq. 11. *)

val residual_defect_level : yield:float -> theta_max:float -> float
(** [1 - Y^(1-θmax)]: the floor reached at T = 1. *)

val required_coverage :
  yield:float -> params:params -> target_dl:float -> float option
(** Stuck-at coverage needed for a defect-level target (the paper's
    Example 1); [None] when the target lies below the residual defect
    level, i.e. is unreachable with this detection technique. *)

val defect_level_curve :
  yield:float -> params:params -> coverages:float array -> (float * float) array

type rmse_scale =
  | Linear  (** [rmse] is in the units of the fitted quantity itself. *)
  | Log10   (** [rmse] is in decades of the fitted quantity. *)

type fit = { params : params; rmse : float; rmse_scale : rmse_scale }
(** [rmse_scale] records the units of [rmse]: the two fitters below
    minimize residuals on different scales, and their RMSE values are not
    comparable to each other without checking it. *)

val rmse_unit : rmse_scale -> string
(** Human-readable unit label ("linear units" / "log10 units") for
    printing an [rmse] next to its scale. *)

val fit_dl : yield:float -> (float * float) array -> fit
(** Fit [(R, θmax)] to observed [(T, DL)] points by least squares on a
    log-defect-level scale (fallout spans decades, so a linear-scale fit
    would see only the high-DL knee).  The returned [rmse] is therefore in
    log10-DL units ([rmse_scale = Log10]): an rmse of 0.1 means residuals
    of about a quarter of a decade of defect level. *)

val fit_theta : (float * float) array -> fit
(** Fit [(R, θmax)] to [(T, Θ)] points via eq. 9 — the better-conditioned
    form when weighted-coverage data is available directly (simulation).
    Residuals are minimized on Θ itself, so [rmse] is in linear coverage
    units ([rmse_scale = Linear]).

    Both fitters reject degenerate data with [Invalid_argument]: empty
    point sets, NaN coordinates, or coverages outside [0, 1].  Single-point
    and zero-variance inputs are accepted and produce a finite rmse. *)

val fit_theta_from : init:params -> (float * float) array -> fit
(** Like {!fit_theta} but a single simplex descent seeded at [init]
    (clamped into the fit bounds) instead of the 15-start sweep — the
    cheap refit used for bootstrap replicates, where the full-data point
    estimate is a good starting point and a ~15x cheaper fit matters.
    @raise Invalid_argument on invalid [init] or degenerate data. *)
