module Coverage = Dl_fault.Coverage

let pct x = Printf.sprintf "%.2f %%" (100.0 *. x)
let ppm x = Printf.sprintf "%.1f ppm" (1e6 *. x)

let of_experiment ?(points = 12) (e : Experiment.t) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let c = e.mapped_circuit in
  let final = Array.length e.vectors in
  out "# Defect-level projection report — %s\n\n" c.title;
  out "## Circuit and test set\n\n";
  out "- %d nodes (%d inputs, %d gates, %d outputs), depth %d\n"
    (Dl_netlist.Circuit.node_count c)
    (Dl_netlist.Circuit.input_count c)
    (Dl_netlist.Circuit.gate_count c)
    (Dl_netlist.Circuit.output_count c)
    (Dl_netlist.Circuit.depth c);
  out "- %d vectors: %d random + %d deterministic (PODEM)\n"
    final e.atpg_stats.random_vectors e.atpg_stats.deterministic_vectors;
  out "- %d collapsed stuck-at faults (%d proven redundant and excluded)\n\n"
    (Array.length e.stuck_faults) e.atpg_stats.untestable;
  out "## Layout fault extraction\n\n";
  out "- %d weighted realistic faults; total weight %.4e\n"
    (Array.length e.extraction.faults)
    (Dl_extract.Ifa.total_weight e.extraction);
  out "- weights scaled by %.3e so that Y = %.2f (eq. 5)\n\n" e.scale_factor e.yield;
  List.iter
    (fun (s : Dl_extract.Ifa.class_summary) ->
      out "  - %s: %d sites, weight %.3e\n"
        (Dl_extract.Defect_stats.class_name s.cls)
        s.count s.total_weight)
    e.extraction.summaries;
  out "\n## Coverage growth\n\n";
  out "| k | T(k) | Θ(k) | Γ(k) | DL(Θ(k)) | WB DL(T(k)) |\n";
  out "|---|---|---|---|---|---|\n";
  Array.iter
    (fun (k, t, th, g) ->
      out "| %d | %s | %s | %s | %s | %s |\n" k (pct t) (pct th) (pct g)
        (ppm (Experiment.defect_level_at e k))
        (ppm (Williams_brown.defect_level ~yield:e.yield ~coverage:t)))
    (Experiment.coverage_rows e ~ks:(Experiment.sample_ks e ~points));
  let fit = Experiment.fit_params e () in
  out "\n## Fitted model (eq. 11)\n\n";
  out "- R = %.3f, θmax = %.4f (rmse %.4f, %s, on the Θ(T) relation)\n" fit.params.r
    fit.params.theta_max fit.rmse
    (Projection.rmse_unit fit.rmse_scale);
  out "- residual defect level 1 − Y^(1−θmax) = %s\n"
    (ppm (Projection.residual_defect_level ~yield:e.yield ~theta_max:fit.params.theta_max));
  let theta_v = Coverage.at e.theta_curve final in
  let theta_i = Coverage.at e.theta_iddq_curve final in
  out "\n## Detection-technique ablation\n\n";
  out "| configuration | Θ final | DL floor |\n|---|---|---|\n";
  out "| static voltage only | %s | %s |\n" (pct theta_v)
    (ppm (Weighted.defect_level ~yield:e.yield ~theta:theta_v));
  out "| voltage + IDDQ | %s | %s |\n" (pct theta_i)
    (ppm (Weighted.defect_level ~yield:e.yield ~theta:theta_i));
  out "| unweighted Γ as Θ | %s | %s |\n"
    (pct (Coverage.at e.gamma_curve final))
    (ppm (Weighted.defect_level ~yield:e.yield ~theta:(Coverage.at e.gamma_curve final)));
  Option.iter
    (fun (m : Wafer_mc.t) ->
      let alpha_str a = if Float.is_finite a then Printf.sprintf "%g" a else "∞" in
      out "\n## Monte-Carlo DL bands (wafer-mc)\n\n";
      out
        "- %d dies (%d wafers × %d dies, %d lots), α_wafer = %s, α_lot = %s; \
         observed yield %s\n\n"
        m.dies m.wafers m.dies_per_wafer m.lots (alpha_str m.alpha_wafer)
        (alpha_str m.alpha_lot)
        (pct (Wafer_mc.observed_yield m));
      out "| k | Θ(k) | DL point | DL 5%% | DL 50%% | DL 95%% |\n";
      out "|---|---|---|---|---|---|\n";
      Array.iter
        (fun (b : Wafer_mc.band) ->
          out "| %d | %s | %s | %s | %s | %s |\n" b.k (pct b.coverage)
            (ppm b.dl_point) (ppm b.dl_q05) (ppm b.dl_q50) (ppm b.dl_q95))
        m.bands)
    e.wafer_mc;
  Option.iter
    (fun (b : Bootstrap.t) ->
      out "\n## Bootstrap confidence intervals (%d replicates)\n\n"
        b.replicates;
      out "| parameter | point | 5%% | 50%% | 95%% |\n|---|---|---|---|---|\n";
      out "| R | %.3f | %.3f | %.3f | %.3f |\n" b.point.Projection.params.r
        b.r.Bootstrap.lo b.r.median b.r.hi;
      out "| θmax | %.4f | %.4f | %.4f | %.4f |\n"
        b.point.Projection.params.theta_max b.theta_max.Bootstrap.lo
        b.theta_max.median b.theta_max.hi;
      out "| α (clustering) | %.3g | %.3g | %.3g | %.3g |\n" b.alpha_point
        b.alpha.Bootstrap.lo b.alpha.median b.alpha.hi)
    e.bootstrap_fit;
  Buffer.contents buf

let write_file ?points path e =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_experiment ?points e))
