(** Defect level under clustered defect statistics.

    The Williams–Brown derivation assumes Poisson fault counts (independent
    random defects).  Real process lines cluster: Stapper models the defect
    count as a gamma-mixed Poisson (negative binomial) with clustering
    parameter [alpha].  Conditioning on "passed the test" (no detected-class
    fault present) gives the clustered counterpart of eq. 1:

    {v DL = 1 - ((alpha + m*T) / (alpha + m))^alpha v}

    with [m = -alpha * (Y^(-1/alpha) - 1)] the mean fault count implied by
    the yield.  As [alpha -> infinity] this converges to Williams–Brown;
    small [alpha] (heavy clustering) lowers the defect level at equal yield
    and coverage, because faulty chips carry many faults and are caught by
    partial tests — the clustered-statistics analogue of Agrawal's
    multiple-fault argument.

    The same substitution applies to the paper's eq. 11: replace [T] by
    [Θ(T) = θmax (1 - (1-T)^R)]. *)

val mean_faults : yield:float -> alpha:float -> float
(** [m] such that the negative binomial with clustering [alpha] has
    P[N = 0] = yield. *)

val defect_level : yield:float -> alpha:float -> coverage:float -> float
(** Clustered DL at the given (weighted or unweighted) coverage.
    @raise Invalid_argument for yield outside (0,1], alpha <= 0 or coverage
    outside [0,1]. *)

val defect_level_projected :
  yield:float -> alpha:float -> params:Projection.params -> coverage:float -> float
(** Clustered DL with the paper's coverage mapping (eq. 9) applied first:
    the clustered generalization of eq. 11. *)

val required_coverage : yield:float -> alpha:float -> target_dl:float -> float
(** Invert {!defect_level} for the coverage reaching a DL target. *)

val fit_alpha : ?init:float -> yield:float -> (float * float) list -> float * float
(** Least-squares fit of [alpha] to observed [(coverage, DL)] points
    (log-alpha simplex over [1e-2 .. 1e6], descent started at [init],
    default 2); returns [(alpha, rmse)].  Single-point and zero-variance
    inputs produce a finite rmse.
    @raise Invalid_argument on an empty point list, NaN coordinates,
    coverages outside [0, 1], yield outside (0, 1] or [init <= 0]. *)
