module Seeds = Dl_util.Seeds
module Rng = Dl_util.Rng
module Prob = Dl_util.Prob
module Stats = Dl_util.Stats
module Histogram = Dl_util.Histogram

type band = {
  k : int;
  coverage : float;
  dl_point : float;
  dl_q05 : float;
  dl_q50 : float;
  dl_q95 : float;
  passed : int;
  defective_passed : int;
  wafer_dls : float array;
}

type t = {
  dies : int;
  dies_per_wafer : int;
  wafers_per_lot : int;
  wafers : int;
  lots : int;
  alpha_wafer : float;
  alpha_lot : float;
  defective : int;
  bands : band array;
}

let observed_yield t =
  if t.dies = 0 then 1.0
  else float_of_int (t.dies - t.defective) /. float_of_int t.dies

let check_alpha name a =
  if Float.is_nan a || a <= 0.0 then
    invalid_arg (Printf.sprintf "Wafer_mc.simulate: %s must be positive" name)

(* A mean-1 clustering severity: the first draw of a dedicated stream, so
   re-deriving the stream (for each wafer of a lot, say) re-reads the same
   value — order-independent by construction. *)
let severity seeds path ~alpha =
  if Float.is_finite alpha then
    Prob.gamma_mixing_sample (Seeds.stream seeds path) ~alpha
  else 1.0

(* Draw one die: defect count N ~ Poisson(g * W), each defect lands on
   fault j with probability w_j / W (categorical by cumulative-weight
   binary search).  The die is defective iff N >= 1; it passes the test at
   vector count k iff no landed fault is detected before k, i.e. iff the
   minimum first-detection index over its faults is >= k. *)
let sample_die rng ~cumulative ~total ~firsts ~g =
  let n = Prob.poisson_sample rng ~lambda:(g *. total) in
  if n = 0 then (false, None)
  else begin
    let m = Array.length cumulative in
    let min_first = ref None in
    for _ = 1 to n do
      let u = Rng.float rng total in
      let lo = ref 0 and hi = ref (m - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cumulative.(mid) <= u then lo := mid + 1 else hi := mid
      done;
      (match (firsts.(!lo), !min_first) with
      | Some f, Some b -> if f < b then min_first := Some f
      | (Some _ as f), None -> min_first := f
      | None, _ -> ())
    done;
    (true, !min_first)
  end

let simulate ?(dies_per_wafer = 256) ?(wafers_per_lot = 4)
    ?(alpha_wafer = infinity) ?(alpha_lot = infinity) ~seeds ~dies ~weights
    ~firsts ~points () =
  if dies <= 0 then invalid_arg "Wafer_mc.simulate: dies must be positive";
  if dies_per_wafer <= 0 then
    invalid_arg "Wafer_mc.simulate: dies_per_wafer must be positive";
  if wafers_per_lot <= 0 then
    invalid_arg "Wafer_mc.simulate: wafers_per_lot must be positive";
  check_alpha "alpha_wafer" alpha_wafer;
  check_alpha "alpha_lot" alpha_lot;
  let nf = Array.length weights in
  if Array.length firsts <> nf then
    invalid_arg "Wafer_mc.simulate: weights and firsts differ in length";
  Array.iter
    (fun w ->
      if not (w >= 0.0) then invalid_arg "Wafer_mc.simulate: negative weight")
    weights;
  let np = Array.length points in
  if np = 0 then invalid_arg "Wafer_mc.simulate: no coverage points";
  let cumulative = Array.make (max nf 1) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let total = !acc in
  let wafers = (dies + dies_per_wafer - 1) / dies_per_wafer in
  let lots = (wafers + wafers_per_lot - 1) / wafers_per_lot in
  let defective = ref 0 in
  (* Pooled pass/escape counters per coverage point, plus the per-wafer DL
     samples the quantile bands are computed over. *)
  let passed = Array.make np 0 in
  let defective_passed = Array.make np 0 in
  let samples = Array.make np [] in
  for w = 0 to wafers - 1 do
    let lot = w / wafers_per_lot in
    let g_lot = severity seeds (Printf.sprintf "lot-%d" lot) ~alpha:alpha_lot in
    let g_wafer =
      severity seeds (Printf.sprintf "wafer-%d" w) ~alpha:alpha_wafer
    in
    let g = g_lot *. g_wafer in
    let first_die = w * dies_per_wafer in
    let last_die = min dies (first_die + dies_per_wafer) - 1 in
    let w_passed = Array.make np 0 in
    let w_defective_passed = Array.make np 0 in
    for d = first_die to last_die do
      let rng = Seeds.stream seeds (Printf.sprintf "die-%d" d) in
      let is_defective, min_first =
        sample_die rng ~cumulative ~total ~firsts ~g
      in
      if is_defective then incr defective;
      Array.iteri
        (fun i (k, _) ->
          let die_passes =
            match min_first with None -> true | Some f -> f >= k
          in
          if die_passes then begin
            w_passed.(i) <- w_passed.(i) + 1;
            if is_defective then
              w_defective_passed.(i) <- w_defective_passed.(i) + 1
          end)
        points
    done;
    for i = 0 to np - 1 do
      passed.(i) <- passed.(i) + w_passed.(i);
      defective_passed.(i) <- defective_passed.(i) + w_defective_passed.(i);
      if w_passed.(i) > 0 then
        samples.(i) <-
          (float_of_int w_defective_passed.(i) /. float_of_int w_passed.(i))
          :: samples.(i)
    done
  done;
  let bands =
    Array.mapi
      (fun i (k, coverage) ->
        let dl_point =
          if passed.(i) = 0 then 0.0
          else float_of_int defective_passed.(i) /. float_of_int passed.(i)
        in
        let wafer_dls = Array.of_list (List.rev samples.(i)) in
        let q p =
          if Array.length wafer_dls = 0 then dl_point
          else Stats.quantile wafer_dls p
        in
        {
          k;
          coverage;
          dl_point;
          dl_q05 = q 0.05;
          dl_q50 = q 0.50;
          dl_q95 = q 0.95;
          passed = passed.(i);
          defective_passed = defective_passed.(i);
          wafer_dls;
        })
      points
  in
  {
    dies;
    dies_per_wafer;
    wafers_per_lot;
    wafers;
    lots;
    alpha_wafer;
    alpha_lot;
    defective = !defective;
    bands;
  }

let histogram ?(bins = 20) band =
  let hi =
    Array.fold_left Float.max band.dl_point band.wafer_dls
  in
  let hi = if hi <= 0.0 then 1e-6 else hi *. 1.0000001 in
  let h = Histogram.create (Linear { lo = 0.0; hi; bins }) in
  Histogram.add_many h band.wafer_dls;
  h

let final_band t = t.bands.(Array.length t.bands - 1)
