module Numerics = Dl_util.Numerics

type params = { r : float; theta_max : float }

let check_params { r; theta_max } =
  if r <= 0.0 then invalid_arg "Projection: R must be positive";
  if not (theta_max > 0.0 && theta_max <= 1.0) then
    invalid_arg "Projection: theta_max must be in (0, 1]"

let check_yield yield =
  if not (yield > 0.0 && yield <= 1.0) then
    invalid_arg "Projection: yield must be in (0, 1]"

let theta_of_coverage params t =
  check_params params;
  if not (t >= 0.0 && t <= 1.0) then
    invalid_arg "Projection.theta_of_coverage: coverage must be in [0, 1]";
  params.theta_max *. (1.0 -. Numerics.pow1m (1.0 -. t) params.r)

let defect_level ~yield ~params ~coverage =
  check_yield yield;
  let theta = theta_of_coverage params coverage in
  1.0 -. Numerics.pow1m yield (1.0 -. theta)

let residual_defect_level ~yield ~theta_max =
  check_yield yield;
  if not (theta_max > 0.0 && theta_max <= 1.0) then
    invalid_arg "Projection.residual_defect_level: theta_max must be in (0, 1]";
  1.0 -. Numerics.pow1m yield (1.0 -. theta_max)

let required_coverage ~yield ~params ~target_dl =
  check_yield yield;
  check_params params;
  if not (target_dl >= 0.0 && target_dl < 1.0) then
    invalid_arg "Projection.required_coverage: target must be in [0, 1)";
  if yield = 1.0 then Some 0.0
  else if target_dl >= defect_level ~yield ~params ~coverage:0.0 then Some 0.0
  else if target_dl <= residual_defect_level ~yield ~theta_max:params.theta_max
  then None
  else begin
    (* Invert eq. 11 in closed form:
       (1-T)^R = 1 - (1 - ln(1-DL)/ln Y) / θmax. *)
    let theta = 1.0 -. (Float.log1p (-.target_dl) /. log yield) in
    let base = 1.0 -. (theta /. params.theta_max) in
    let t = 1.0 -. Numerics.pow1m base (1.0 /. params.r) in
    Some (Numerics.clamp01 t)
  end

let defect_level_curve ~yield ~params ~coverages =
  Array.map (fun t -> (t, defect_level ~yield ~params ~coverage:t)) coverages

type rmse_scale = Linear | Log10
type fit = { params : params; rmse : float; rmse_scale : rmse_scale }

let rmse_unit = function Linear -> "linear units" | Log10 -> "log10 units"

let lo = [| 0.05; 0.01 |]
let hi = [| 50.0; 1.0 |]

(* Degenerate data (a NaN coordinate, a coverage outside [0,1]) would
   otherwise surface as NaN parameters out of the simplex; reject it
   up front.  Single-point and zero-variance inputs are fine — the fit
   degenerates gracefully to a finite (if meaningless) optimum. *)
let check_points ~who points =
  if Array.length points = 0 then
    invalid_arg (Printf.sprintf "Projection.%s: no points" who);
  Array.iter
    (fun (t, y) ->
      if Float.is_nan t || Float.is_nan y then
        invalid_arg (Printf.sprintf "Projection.%s: NaN in data" who);
      if not (t >= 0.0 && t <= 1.0) then
        invalid_arg
          (Printf.sprintf "Projection.%s: coverage outside [0, 1]" who))
    points

(* Multi-start: the boundary theta_max = 1 attracts a local optimum. *)
let starts =
  List.concat_map
    (fun r0 -> List.map (fun t0 -> [| r0; t0 |]) [ 0.6; 0.9; 0.99 ])
    [ 0.7; 1.0; 1.5; 2.5; 5.0 ]

let best_fit ~model data =
  List.fold_left
    (fun acc init ->
      let r = Dl_util.Fit.curve_fit ~model ~lo ~hi ~init data in
      match acc with
      | Some (b : Dl_util.Fit.fit) when b.rss <= r.rss -> acc
      | _ -> Some r)
    None starts
  |> Option.get

let fit_dl ~yield points =
  check_yield yield;
  check_points ~who:"fit_dl" points;
  (* Fit on log10 DL so the ppm tail matters as much as the knee. *)
  let floor_dl = 1e-12 in
  let log_points =
    Array.to_list
      (Array.map (fun (t, dl) -> (t, log10 (Float.max floor_dl dl))) points)
  in
  let data = Dl_util.Fit.make_data log_points in
  let model p t =
    let dl =
      defect_level ~yield ~params:{ r = p.(0); theta_max = p.(1) } ~coverage:t
    in
    log10 (Float.max floor_dl dl)
  in
  let r = best_fit ~model data in
  { params = { r = r.params.(0); theta_max = r.params.(1) };
    rmse = r.rmse;
    rmse_scale = Log10 }

let fit_theta points =
  check_points ~who:"fit_theta" points;
  let data = Dl_util.Fit.make_data (Array.to_list points) in
  let model p t = theta_of_coverage { r = p.(0); theta_max = p.(1) } t in
  let r = best_fit ~model data in
  { params = { r = r.params.(0); theta_max = r.params.(1) };
    rmse = r.rmse;
    rmse_scale = Linear }

let fit_theta_from ~init points =
  check_params init;
  check_points ~who:"fit_theta_from" points;
  let data = Dl_util.Fit.make_data (Array.to_list points) in
  let model p t = theta_of_coverage { r = p.(0); theta_max = p.(1) } t in
  let clamp v l h = Float.min h (Float.max l v) in
  let init = [| clamp init.r lo.(0) hi.(0); clamp init.theta_max lo.(1) hi.(1) |] in
  let r = Dl_util.Fit.curve_fit ~model ~lo ~hi ~init data in
  { params = { r = r.params.(0); theta_max = r.params.(1) };
    rmse = r.rmse;
    rmse_scale = Linear }
