(** Bootstrap confidence intervals on the fitted projection parameters.

    {!Projection.fit_theta}'s [(R, θmax)] and {!Clustered.fit_alpha}'s
    [alpha] are point estimates computed from finite fault-simulation
    samples: a few hundred stuck-at faults define T(k) and a few hundred
    weighted realistic faults define Θ(k).  Case resampling quantifies
    that sampling uncertainty: each replicate redraws both fault
    populations with replacement (a realistic fault's weight and
    first-detection index move together), rebuilds the coverage curves,
    and refits — the spread of the refitted parameters over replicates is
    the sampling distribution of the estimator, summarized as 5/50/95%
    percentile intervals.

    Replicate randomness comes from path-keyed {!Dl_util.Seeds} streams
    ([rep-<i>] under the caller's scope): replayable, order-independent,
    and safe to cache as the [bootstrap-fit] stage artifact.

    The full-data point estimate uses the expensive multi-start fit; each
    replicate then restarts a single simplex from that optimum
    ({!Projection.fit_theta_from}), the standard (and ~15x cheaper)
    bootstrap refit. *)

type ci = { lo : float; median : float; hi : float }
(** 5%, 50% and 95% percentiles of the bootstrap sampling distribution. *)

type t = {
  replicates : int;
  fit_points : int;           (** Log-spaced sample counts per refit. *)
  point : Projection.fit;     (** Full-data [(R, θmax)] point estimate. *)
  alpha_point : float;        (** Full-data clustering-parameter estimate. *)
  r : ci;
  theta_max : ci;
  alpha : ci;
  r_samples : float array;          (** Per-replicate R, replicate order. *)
  theta_max_samples : float array;
  alpha_samples : float array;
}

val run :
  ?fit_points:int ->
  seeds:Dl_util.Seeds.t ->
  replicates:int ->
  yield:float ->
  t_firsts:int option array ->
  theta_firsts:int option array ->
  theta_weights:float array ->
  n_vectors:int ->
  unit ->
  t
(** [run ~seeds ~replicates ~yield ~t_firsts ~theta_firsts ~theta_weights
    ~n_vectors ()] bootstraps over the stuck-at first-detection array (the
    T(k) sample) and the parallel realistic (first, weight) pairs (the
    Θ(k) sample), fitting on [fit_points] (default 100) log-spaced vector
    counts up to [n_vectors] — the same grid as
    {!Experiment.fit_params}.
    @raise Invalid_argument on non-positive [replicates] or [n_vectors],
    yield outside (0, 1], empty detection arrays, or a firsts/weights
    length mismatch. *)

val contains : ci -> float -> bool
(** Whether a value lies inside the closed interval [\[lo, hi\]]. *)

val of_samples :
  fit_points:int ->
  point:Projection.fit ->
  alpha_point:float ->
  r_samples:float array ->
  theta_max_samples:float array ->
  alpha_samples:float array ->
  t
(** Rebuild a result from its persisted parts — what the [bootstrap-fit]
    stage decoder uses (the percentile summaries are recomputed from the
    samples, so they can never disagree with them).
    @raise Invalid_argument on empty or length-mismatched samples. *)
