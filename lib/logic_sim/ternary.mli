(** Three-valued logic (0, 1, X) used by the PODEM ATPG for implication and
    X-path analysis. *)

type t = V0 | V1 | VX

val of_bool : bool -> t
val to_bool : t -> bool option
val to_char : t -> char
val of_char : char -> t option
(** '0', '1', 'x'/'X'. *)

val equal : t -> t -> bool
val inv : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t

val eval : Dl_netlist.Gate.kind -> t array -> t
(** Ternary gate evaluation with full X-propagation (e.g. AND with any input
    at 0 yields 0 even if others are X).  Arity is {e not} validated (gates in
    a finalized circuit were checked at construction); use {!eval_checked}
    for fanin arrays of unknown provenance. *)

val eval_checked : Dl_netlist.Gate.kind -> t array -> t
(** {!eval} preceded by an arity check; raises [Invalid_argument]. *)
