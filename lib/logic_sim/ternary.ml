type t = V0 | V1 | VX

let of_bool b = if b then V1 else V0
let to_bool = function V0 -> Some false | V1 -> Some true | VX -> None

let to_char = function V0 -> '0' | V1 -> '1' | VX -> 'X'

let of_char = function
  | '0' -> Some V0
  | '1' -> Some V1
  | 'x' | 'X' -> Some VX
  | _ -> None

let equal a b = a = b

let inv = function V0 -> V1 | V1 -> V0 | VX -> VX

let band a b =
  match (a, b) with
  | V0, _ | _, V0 -> V0
  | V1, V1 -> V1
  | _ -> VX

let bor a b =
  match (a, b) with
  | V1, _ | _, V1 -> V1
  | V0, V0 -> V0
  | _ -> VX

let bxor a b =
  match (a, b) with
  | VX, _ | _, VX -> VX
  | V0, V0 | V1, V1 -> V0
  | V0, V1 | V1, V0 -> V1

(* Like [Gate.eval], arity is trusted: gates in a finalized [Circuit.t] were
   validated once by [Builder.finalize].  [eval_checked] re-validates. *)
let eval kind inputs =
  let open Dl_netlist in
  match kind with
  | Gate.Input -> invalid_arg "Ternary.eval: Input has no function"
  | Gate.Buf -> inputs.(0)
  | Gate.Not -> inv inputs.(0)
  | Gate.And -> Array.fold_left band V1 inputs
  | Gate.Nand -> inv (Array.fold_left band V1 inputs)
  | Gate.Or -> Array.fold_left bor V0 inputs
  | Gate.Nor -> inv (Array.fold_left bor V0 inputs)
  | Gate.Xor -> Array.fold_left bxor V0 inputs
  | Gate.Xnor -> inv (Array.fold_left bxor V0 inputs)

let eval_checked kind inputs =
  let n = Array.length inputs in
  if not (Dl_netlist.Gate.arity_ok kind n) then
    invalid_arg "Ternary.eval: arity violation";
  eval kind inputs
