(** Two-valued compiled simulation, 64 patterns per machine word.

    This is the workhorse behind parallel-pattern fault simulation: bit [i]
    of every word carries pattern [i] through the whole circuit. *)

open Dl_netlist

val run : Circuit.t -> int64 array -> int64 array
(** [run c pi_words] evaluates the circuit; [pi_words] has one word per
    primary input in [c.inputs] order.  Returns one word per node, indexed
    by node id.

    This is the {e reference} engine: simple, allocating, and retained as
    the oracle the flat-kernel path is property-tested against.  Hot loops
    should use {!run_flat} over a {!Kernel.t}. *)

(** {2 Flat-kernel path}

    Allocation-free pipeline: lower once with {!Kernel.of_circuit}, allocate
    a buffer with {!Kernel.create_words}, then per 64-pattern block call
    {!load_patterns} (or {!load_words}) followed by {!run_flat}. *)

val load_words : Kernel.t -> Kernel.words -> int64 array -> unit
(** Seed primary-input words (one per PI, [inputs] order) into the buffer. *)

val load_patterns :
  Kernel.t -> Kernel.words -> bool array array -> base:int -> count:int -> unit
(** [load_patterns k buf vectors ~base ~count] transposes the [count] (≤ 64)
    test vectors starting at [vectors.(base)] directly into the PI word slots
    of [buf] — bit [b] of each PI word is vector [base+b] — zero-filling bits
    [count..63].  Replaces the allocating [Array.sub] + {!words_of_patterns}
    block-prep of the reference path. *)

val run_flat : Kernel.t -> Kernel.words -> unit
(** Evaluate all gates in topological order against the buffer (PIs must be
    loaded first).  Equivalent to {!Kernel.run_into}; bit-for-bit identical
    to {!run} on the same patterns, with zero per-gate allocation. *)

val load_patterns4 :
  Kernel.t -> Kernel.words -> bool array array -> base:int -> count:int -> unit
(** Wide-block {!load_patterns}: transposes [count] (≤ 256) vectors starting
    at [vectors.(base)] into a {!Kernel.create_words4} buffer — bit [b] of
    sub-word [w] of each PI is vector [base + 64w + b] — zero-filling the
    tail.  Pair with {!run_flat4}. *)

val run_flat4 : Kernel.t -> Kernel.words -> unit
(** 256-pattern evaluation over a wide buffer (= {!Kernel.run_into4}).
    Sub-word [w] of every node is bit-identical to {!run_flat} over patterns
    [64w .. 64w+63] of the block. *)

val outputs_of : Circuit.t -> int64 array -> int64 array
(** Project node values to primary outputs, in [c.outputs] order. *)

val run_single : Circuit.t -> bool array -> bool array
(** Single-pattern convenience wrapper (one bool per PI, returns one bool
    per node). *)

val output_bits : Circuit.t -> bool array -> bool array
(** Single-pattern primary-output response. *)

val random_words : Dl_util.Rng.t -> Circuit.t -> int64 array
(** Fresh fully-random PI words (64 random patterns). *)

val pattern_of_words : Circuit.t -> int64 array -> int -> bool array
(** Extract pattern [bit] (0..63) from PI words as a bool vector. *)

val words_of_patterns : Circuit.t -> bool array array -> int64 array
(** Pack up to 64 patterns (each one bool per PI) into words; missing high
    patterns are zero-filled. *)
