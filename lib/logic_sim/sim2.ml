open Dl_netlist

let run (c : Circuit.t) pi_words =
  if Array.length pi_words <> Array.length c.inputs then
    invalid_arg "Sim2.run: one word per primary input required";
  let values = Array.make (Circuit.node_count c) 0L in
  Array.iteri (fun i id -> values.(id) <- pi_words.(i)) c.inputs;
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      if nd.kind <> Gate.Input then begin
        let ins = Array.map (fun src -> values.(src)) nd.fanin in
        values.(id) <- Gate.eval_word nd.kind ins
      end)
    c.topo_order;
  values

(* --- Flat-kernel entry points -------------------------------------------- *)

(* [run] above is retained as the reference engine the kernel path is
   property-tested against; the [_flat] family below is the production hot
   path: caller-provided bigarray buffer, no per-run or per-gate
   allocation. *)

let load_words (k : Kernel.t) (buf : Kernel.words) pi_words =
  if Array.length pi_words <> Array.length k.inputs then
    invalid_arg "Sim2.load_words: one word per primary input required";
  if Bigarray.Array1.dim buf < k.n then
    invalid_arg "Sim2.load_words: values buffer shorter than node count";
  for i = 0 to Array.length k.inputs - 1 do
    Bigarray.Array1.unsafe_set buf k.inputs.(i) pi_words.(i)
  done

let load_patterns (k : Kernel.t) (buf : Kernel.words) vectors ~base ~count =
  let npi = Array.length k.inputs in
  if count < 0 || count > 64 then
    invalid_arg "Sim2.load_patterns: count must be in 0..64";
  if base < 0 || base + count > Array.length vectors then
    invalid_arg "Sim2.load_patterns: vector slice out of range";
  if Bigarray.Array1.dim buf < k.n then
    invalid_arg "Sim2.load_patterns: values buffer shorter than node count";
  for bit = 0 to count - 1 do
    if Array.length vectors.(base + bit) <> npi then
      invalid_arg "Sim2.load_patterns: pattern width mismatch"
  done;
  (* Transpose the vector slice straight into the PI word slots: bit [b] of
     PI word [i] is vector [base+b]'s value for input [i].  High bits beyond
     [count] are zero-filled, matching [words_of_patterns]. *)
  for i = 0 to npi - 1 do
    let pi_id = Array.unsafe_get k.inputs i in
    let w = ref 0L in
    for bit = 0 to count - 1 do
      if Array.unsafe_get (Array.unsafe_get vectors (base + bit)) i then
        w := Int64.logor !w (Int64.shift_left 1L bit)
    done;
    Bigarray.Array1.unsafe_set buf pi_id !w
  done

let run_flat (k : Kernel.t) (buf : Kernel.words) = Kernel.run_into k buf

let load_patterns4 (k : Kernel.t) (buf : Kernel.words) vectors ~base ~count =
  let npi = Array.length k.inputs in
  if count < 0 || count > 256 then
    invalid_arg "Sim2.load_patterns4: count must be in 0..256";
  if base < 0 || base + count > Array.length vectors then
    invalid_arg "Sim2.load_patterns4: vector slice out of range";
  if Bigarray.Array1.dim buf < 4 * k.n then
    invalid_arg "Sim2.load_patterns4: values buffer shorter than 4x node count";
  for bit = 0 to count - 1 do
    if Array.length vectors.(base + bit) <> npi then
      invalid_arg "Sim2.load_patterns4: pattern width mismatch"
  done;
  (* Same transpose as [load_patterns], split over the four sub-words: bit
     [b] of sub-word [w] of PI word [i] is vector [base + 64w + b]'s value
     for input [i], high bits beyond [count] zero-filled. *)
  for i = 0 to npi - 1 do
    let pi4 = Array.unsafe_get k.inputs i * 4 in
    for w = 0 to 3 do
      let lo = w * 64 in
      let cnt =
        if count <= lo then 0 else if count - lo > 64 then 64 else count - lo
      in
      let word = ref 0L in
      for bit = 0 to cnt - 1 do
        if Array.unsafe_get (Array.unsafe_get vectors (base + lo + bit)) i then
          word := Int64.logor !word (Int64.shift_left 1L bit)
      done;
      Bigarray.Array1.unsafe_set buf (pi4 + w) !word
    done
  done

let run_flat4 (k : Kernel.t) (buf : Kernel.words) = Kernel.run_into4 k buf

let outputs_of (c : Circuit.t) values =
  Array.map (fun id -> values.(id)) c.outputs

let bools_to_words bits = Array.map (fun b -> if b then -1L else 0L) bits

let run_single c pi_bits =
  let values = run c (bools_to_words pi_bits) in
  Array.map (fun w -> Int64.logand w 1L = 1L) values

let output_bits c pi_bits =
  let values = run_single c pi_bits in
  Array.map (fun id -> values.(id)) c.outputs

let random_words rng (c : Circuit.t) =
  Array.init (Array.length c.inputs) (fun _ -> Dl_util.Rng.word rng)

let pattern_of_words (c : Circuit.t) pi_words bit =
  if bit < 0 || bit > 63 then invalid_arg "Sim2.pattern_of_words: bit out of range";
  if Array.length pi_words <> Array.length c.inputs then
    invalid_arg "Sim2.pattern_of_words: word count mismatch";
  Array.map
    (fun w -> Int64.logand (Int64.shift_right_logical w bit) 1L = 1L)
    pi_words

let words_of_patterns (c : Circuit.t) patterns =
  let npi = Array.length c.inputs in
  if Array.length patterns > 64 then
    invalid_arg "Sim2.words_of_patterns: more than 64 patterns";
  Array.iter
    (fun p ->
      if Array.length p <> npi then
        invalid_arg "Sim2.words_of_patterns: pattern width mismatch")
    patterns;
  Array.init npi (fun pi ->
      let w = ref 0L in
      Array.iteri
        (fun bit p ->
          if p.(pi) then w := Int64.logor !w (Int64.shift_left 1L bit))
        patterns;
      !w)
