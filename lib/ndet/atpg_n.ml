open Dl_netlist
module Rng = Dl_util.Rng
module Stuck_at = Dl_fault.Stuck_at
module Fault_sim = Dl_fault.Fault_sim
module Podem = Dl_atpg.Podem
module Scoap = Dl_atpg.Scoap

type stats = {
  n : int;
  total_faults : int;
  untestable : int;
  aborted : int;
  under_quota : int;
  random_vectors : int;
  topup_vectors : int;
  final_vectors : int;
}

type result = {
  vectors : bool array array;
  counts : int array;
  stats : stats;
  untestable_faults : Stuck_at.t array;
  aborted_faults : Stuck_at.t array;
}

let vector_key (v : bool array) =
  String.init (Array.length v) (fun i -> if v.(i) then '\001' else '\000')

(* Full (no-drop) detection lists per vector: which fault indices each
   vector detects.  The O(faults * vectors) cost is what makes the greedy
   pass below exact rather than heuristic. *)
let detection_lists ?(engine = Fault_sim.Flat) c ~faults ~vectors =
  let per_vector = Array.make (Array.length vectors) [] in
  let totals = Array.make (Array.length faults) 0 in
  if Array.length faults > 0 && Array.length vectors > 0 then
    ignore
      (Fault_sim.run_with ~engine ~drop_detected:false
         ~on_detect:(fun ~fault_index ~vector_index ->
           per_vector.(vector_index) <- fault_index :: per_vector.(vector_index);
           totals.(fault_index) <- totals.(fault_index) + 1)
         c ~faults ~vectors);
  (per_vector, totals)

let compact_ndet ?engine (c : Circuit.t) ~faults ~vectors ~n =
  if n < 1 then invalid_arg "Atpg_n.compact_ndet: n must be >= 1";
  let n_faults = Array.length faults in
  let n_vectors = Array.length vectors in
  let per_vector, totals = detection_lists ?engine c ~faults ~vectors in
  let quota = Array.map (fun t -> min n t) totals in
  let kept_counts = Array.make n_faults 0 in
  let keep = Array.make n_vectors false in
  (* Reverse greedy: a vector is skipped only when every fault it detects
     already has its quota among the vectors kept so far, so each fault ends
     with at least [quota] kept detections. *)
  for v = n_vectors - 1 downto 0 do
    if List.exists (fun fi -> kept_counts.(fi) < quota.(fi)) per_vector.(v)
    then begin
      keep.(v) <- true;
      List.iter
        (fun fi -> kept_counts.(fi) <- kept_counts.(fi) + 1)
        per_vector.(v)
    end
  done;
  let kept = ref [] in
  for v = n_vectors - 1 downto 0 do
    if keep.(v) then kept := vectors.(v) :: !kept
  done;
  (* kept_counts counted every detection among kept vectors; report capped. *)
  (Array.of_list !kept, Array.map (fun k -> min n k) kept_counts)

let run ?(seed = 7) ?(max_random = 4096) ?(stale_limit = 512)
    ?(backtrack_limit = 10_000) ?(engine = Fault_sim.Flat) ~n (c : Circuit.t)
    ~faults =
  if n < 1 then invalid_arg "Atpg_n.run: n must be >= 1";
  if max_random < 0 then invalid_arg "Atpg_n.run: negative max_random";
  let rng = Rng.create seed in
  let npi = Array.length c.inputs in
  let n_faults = Array.length faults in
  let counts = Array.make n_faults 0 in
  let live_indices () =
    let acc = ref [] in
    for i = n_faults - 1 downto 0 do
      if counts.(i) < n then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  (* Credit a block of vectors (global base index [base]) against the live
     faults, capping each fault at its quota. *)
  let credit ~base ~live block ~last_useful =
    let live_faults = Array.map (fun i -> faults.(i)) live in
    ignore
      (Fault_sim.run_with ~engine ~drop_detected:false
         ~on_detect:(fun ~fault_index ~vector_index ->
           let fi = live.(fault_index) in
           if counts.(fi) < n then begin
             counts.(fi) <- counts.(fi) + 1;
             let g = base + vector_index in
             if g + 1 > !last_useful then last_useful := g + 1
           end)
         c ~faults:live_faults ~vectors:block)
  in
  (* --- random phase with per-fault quotas -------------------------------- *)
  let all_blocks = ref [] in
  let applied = ref 0 in
  let last_useful = ref 0 in
  let stop = ref (n_faults = 0) in
  while (not !stop) && !applied < max_random do
    let count = min 64 (max_random - !applied) in
    let block =
      Array.init count (fun _ -> Array.init npi (fun _ -> Rng.bool rng))
    in
    let live = live_indices () in
    if Array.length live = 0 then stop := true
    else begin
      credit ~base:!applied ~live block ~last_useful;
      all_blocks := block :: !all_blocks;
      applied := !applied + count;
      if !applied - !last_useful >= stale_limit then stop := true;
      if Array.for_all (fun k -> k >= n) counts then stop := true
    end
  done;
  let random_vectors = Array.concat (List.rev !all_blocks) in
  (* --- PODEM top-up of under-quota faults -------------------------------- *)
  let scoap = Scoap.compute c in
  let seen = Hashtbl.create 1024 in
  Array.iter (fun v -> Hashtbl.replace seen (vector_key v) ()) random_vectors;
  let topup = ref [] in
  let topup_count = ref 0 in
  let untestable_list = ref [] in
  let aborted_list = ref [] in
  (* Fresh excitation: perturb the deterministic vector by flipping random
     bits, keeping only perturbations the dual-simulation oracle confirms
     still detect the target and that are distinct from every vector already
     in the set. *)
  let perturbations base_vector target deficit =
    let found = ref [] in
    let found_count = ref 0 in
    let attempts = ref 0 in
    let budget = 24 * deficit in
    while !found_count < deficit && !attempts < budget do
      incr attempts;
      let v = Array.copy base_vector in
      let flips = 1 + Rng.int rng (max 1 (npi / 4)) in
      for _ = 1 to flips do
        let b = Rng.int rng npi in
        v.(b) <- not v.(b)
      done;
      let key = vector_key v in
      if (not (Hashtbl.mem seen key)) && Fault_sim.detects_fault c target v
      then begin
        Hashtbl.replace seen key ();
        found := v :: !found;
        incr found_count
      end
    done;
    List.rev !found
  in
  for i = 0 to n_faults - 1 do
    if counts.(i) < n then begin
      let target = faults.(i) in
      match Podem.generate ~backtrack_limit ~scoap c target with
      | Podem.Untestable ->
          if counts.(i) = 0 then untestable_list := target :: !untestable_list
      | Podem.Aborted ->
          if counts.(i) = 0 then aborted_list := target :: !aborted_list
      | Podem.Test vector ->
          let deficit = n - counts.(i) in
          let key = vector_key vector in
          let fresh =
            if Hashtbl.mem seen key then []
            else begin
              Hashtbl.replace seen key ();
              [ vector ]
            end
          in
          let need = deficit - List.length fresh in
          let fresh =
            if need > 0 then fresh @ perturbations vector target need
            else fresh
          in
          if fresh <> [] then begin
            let block = Array.of_list fresh in
            let live = live_indices () in
            (* Incidental credit: the new vectors count against every fault
               still short of quota, not just the target. *)
            credit ~base:(!applied + !topup_count) ~live block ~last_useful;
            List.iter (fun v -> topup := v :: !topup) fresh;
            topup_count := !topup_count + Array.length block
          end
    end
  done;
  let topup_vectors = Array.of_list (List.rev !topup) in
  let full = Array.append random_vectors topup_vectors in
  (* --- quota-preserving compaction --------------------------------------- *)
  let vectors, final_counts = compact_ndet ~engine c ~faults ~vectors:full ~n in
  let under_quota = ref 0 in
  Array.iter (fun k -> if k > 0 && k < n then incr under_quota) final_counts;
  {
    vectors;
    counts = final_counts;
    stats =
      {
        n;
        total_faults = n_faults;
        untestable = List.length !untestable_list;
        aborted = List.length !aborted_list;
        under_quota = !under_quota;
        random_vectors = Array.length random_vectors;
        topup_vectors = Array.length topup_vectors;
        final_vectors = Array.length vectors;
      };
    untestable_faults = Array.of_list (List.rev !untestable_list);
    aborted_faults = Array.of_list (List.rev !aborted_list);
  }
