(** n-detection test generation: random phase with per-fault quotas, PODEM
    top-up of under-quota faults, and quota-preserving compaction.

    The flow generalises {!Dl_atpg.Atpg}: random vectors are applied until
    every fault has been detected [n] times (or the budget/staleness limits
    hit), then faults still short of quota are re-targeted with PODEM and
    each deterministic vector is perturbed into additional *distinct*
    detecting vectors (fresh excitation) until the deficit is closed.  A
    reverse-order greedy pass then discards vectors while preserving each
    fault's achieved quota [min n (detections in the full set)]. *)

open Dl_netlist

type stats = {
  n : int;
  total_faults : int;
  untestable : int;
      (** Faults PODEM proved redundant (never detected, search exhausted). *)
  aborted : int;
      (** Never-detected faults abandoned at the backtrack limit. *)
  under_quota : int;
      (** Faults detected at least once but fewer than [n] times by the
          final set (top-up could not manufacture enough distinct
          detecting vectors). *)
  random_vectors : int;
  topup_vectors : int;
  final_vectors : int;  (** After compaction. *)
}

type result = {
  vectors : bool array array;
      (** Compacted sequence, original order preserved: random prefix then
          top-up suffix. *)
  counts : int array;
      (** Per-fault detection counts on [vectors], capped at [n]. *)
  stats : stats;
  untestable_faults : Dl_fault.Stuck_at.t array;
  aborted_faults : Dl_fault.Stuck_at.t array;
}

val run :
  ?seed:int ->
  ?max_random:int ->
  ?stale_limit:int ->
  ?backtrack_limit:int ->
  ?engine:Dl_fault.Fault_sim.engine ->
  n:int ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  result
(** Generate an n-detection test set for the fault list.  [seed] (default 7)
    drives both the random phase and the perturbation search; [max_random]
    (default 4096) caps the random prefix; [stale_limit] (default 512) stops
    the random phase after that many consecutive vectors without a counted
    detection; [engine] (default [Flat]) selects the simulation engine used
    throughout.  At [n:1] the structure matches the single-detection flow:
    the quota-preserving compaction preserves plain coverage exactly.
    Raises [Invalid_argument] if [n < 1]. *)

val compact_ndet :
  ?engine:Dl_fault.Fault_sim.engine ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  vectors:bool array array ->
  n:int ->
  bool array array * int array
(** Reverse-order greedy compaction preserving n-detection: returns the kept
    subsequence plus per-fault detection counts (capped at [n]) on it.  For
    every fault, the kept set detects it at least
    [min n (detections in the input set)] times — in particular plain
    ([n:1]) coverage is preserved exactly. *)
