module Fault_sim = Dl_fault.Fault_sim
module Coverage = Dl_fault.Coverage

type t = Fault_sim.ndet

let max_n (t : t) = t.drop_after
let fault_count (t : t) = Array.length t.counts
let counts (t : t) = t.counts
let kth_firsts (t : t) ~k = Fault_sim.ndet_kth_detection t ~k

let detected_at_least (t : t) ~k =
  if k < 1 || k > t.drop_after then
    invalid_arg "Profile.detected_at_least: k out of range";
  Array.fold_left (fun acc c -> if c >= k then acc + 1 else acc) 0 t.counts

let coverage ?weights (t : t) ~n = Coverage.make ?weights (kth_firsts t ~k:n)
let final_coverage ?weights (t : t) ~n = Coverage.final (coverage ?weights t ~n)
