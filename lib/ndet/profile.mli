(** n-detection profiles: the multi-detect analogue of a first-detection
    record.

    A profile is a {!Dl_fault.Fault_sim.ndet} result viewed as a family of
    coverage curves: for every [n <= max_n], the n-detection coverage
    T{_n}(k) is the (possibly weighted) fraction of faults whose n-th
    detection happened within the first [k] vectors.  One simulation at
    [drop_after:max_n] therefore yields the whole curve family
    T{_1} ... T{_max_n} — T{_1} being the ordinary coverage of the
    single-detection flow. *)

type t = Dl_fault.Fault_sim.ndet

val max_n : t -> int
(** The [drop_after] quota the profile was simulated with. *)

val fault_count : t -> int

val counts : t -> int array
(** Per-fault detection counts, capped at [max_n]. *)

val kth_firsts : t -> k:int -> int option array
(** Vector index of each fault's k-th detection (1-based), [None] where the
    fault was detected fewer than [k] times.  Raises [Invalid_argument]
    unless [1 <= k <= max_n]. *)

val detected_at_least : t -> k:int -> int
(** Number of faults detected at least [k] times. *)

val coverage : ?weights:float array -> t -> n:int -> Dl_fault.Coverage.t
(** The T{_n}(k) curve: a fault counts as covered at vector [k] once its
    n-th detection has occurred at some index [< k].  With [weights] this
    is the n-detection analogue of the paper's Θ(k) (eq. 6).  At [n:1]
    (any [weights]) this is bit-identical to
    [Coverage.make ?weights first_detection] of the equivalent
    single-detection run. *)

val final_coverage : ?weights:float array -> t -> n:int -> float
(** [Coverage.final (coverage ?weights t ~n)]. *)
