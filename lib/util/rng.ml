type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let of_state state = { state }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Two successive outputs seed the child: the second is mixed again so the
     child stream cannot collide with the parent's. *)
  let s = bits64 t in
  { state = mix64 s }

let word = bits64

(* Uniform int in [0, n) by rejection on the top bits to avoid modulo bias. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.(sub (add bits (sub n64 1L)) v) < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random mantissa bits. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Rng.exponential: lambda must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. lambda

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let log_uniform t lo hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Rng.log_uniform: need 0 < lo <= hi";
  exp (float_in t (log lo) (log hi))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t arr k =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher–Yates: only the first k slots need to be randomized. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
