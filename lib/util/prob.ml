let log_factorial =
  (* Cache small values; Stirling with correction terms beyond the cache. *)
  let cache_size = 256 in
  let cache = Array.make cache_size 0.0 in
  let () =
    for i = 2 to cache_size - 1 do
      cache.(i) <- cache.(i - 1) +. log (float_of_int i)
    done
  in
  fun n ->
    if n < 0 then invalid_arg "Prob.log_factorial: negative argument";
    if n < cache_size then cache.(n)
    else begin
      let x = float_of_int n in
      (* Stirling series: ln n! = n ln n - n + 0.5 ln(2 pi n) + 1/(12n) - ... *)
      (x *. log x) -. x
      +. (0.5 *. log (2.0 *. Float.pi *. x))
      +. (1.0 /. (12.0 *. x))
      -. (1.0 /. (360.0 *. (x ** 3.0)))
    end

let log_gamma x =
  (* For positive integer-plus-alpha arguments we only need moderate
     accuracy; use Stirling with corrections for x >= 10 and the recurrence
     below that. *)
  let rec shift x acc =
    if x >= 10.0 then (x, acc) else shift (x +. 1.0) (acc -. log x)
  in
  let x, acc = shift x 0.0 in
  acc
  +. ((x -. 0.5) *. log x)
  -. x
  +. (0.5 *. log (2.0 *. Float.pi))
  +. (1.0 /. (12.0 *. x))
  -. (1.0 /. (360.0 *. (x ** 3.0)))

let poisson_pmf ~lambda k =
  if lambda < 0.0 then invalid_arg "Prob.poisson_pmf: negative lambda";
  if k < 0 then 0.0
  else if lambda = 0.0 then (if k = 0 then 1.0 else 0.0)
  else exp ((float_of_int k *. log lambda) -. lambda -. log_factorial k)

let poisson_cdf ~lambda k =
  if k < 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. poisson_pmf ~lambda i
    done;
    Float.min 1.0 !acc
  end

let poisson_sample rng ~lambda =
  if lambda < 0.0 then invalid_arg "Prob.poisson_sample: negative lambda";
  if lambda = 0.0 then 0
  else if lambda > 500.0 then
    (* Normal approximation is ample at this size. *)
    let x = lambda +. (sqrt lambda *. Rng.gaussian rng) in
    max 0 (int_of_float (Float.round x))
  else begin
    (* Knuth inversion in log space to avoid underflow. *)
    let limit = -.lambda in
    let rec loop k acc =
      let acc = acc +. log (1.0 -. Rng.float rng 1.0) in
      if acc < limit then k else loop (k + 1) acc
    in
    loop 0 0.0
  end

(* Marsaglia-Tsang Gamma(shape, scale 1) generator; the shape < 1 case uses
   the boosting identity Gamma(a) = Gamma(a+1) * U^(1/a). *)
let rec gamma_sample rng ~shape =
  if shape <= 0.0 || Float.is_nan shape then
    invalid_arg "Prob.gamma_sample: shape must be positive";
  if shape < 1.0 then begin
    let u = 1.0 -. Rng.float rng 1.0 in
    gamma_sample rng ~shape:(shape +. 1.0) *. (u ** (1.0 /. shape))
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = Rng.gaussian rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = 1.0 -. Rng.float rng 1.0 in
        if log u < (0.5 *. x *. x) +. d -. (d *. v3) +. (d *. log v3) then d *. v3
        else draw ()
      end
    in
    draw ()
  end

let gamma_mixing_sample rng ~alpha =
  if alpha <= 0.0 then invalid_arg "Prob.gamma_mixing_sample: alpha must be positive";
  (* alpha = infinity is the Poisson limit: a point mass at the mean. *)
  if Float.is_finite alpha then gamma_sample rng ~shape:alpha /. alpha else 1.0

let negative_binomial_sample rng ~mean ~alpha =
  if mean < 0.0 then invalid_arg "Prob.negative_binomial_sample: negative mean";
  if alpha <= 0.0 then invalid_arg "Prob.negative_binomial_sample: alpha must be positive";
  if mean = 0.0 then 0
  else
    (* Gamma-mixed Poisson: exactly the compound process behind
       [negative_binomial_pmf]. *)
    poisson_sample rng ~lambda:(mean *. gamma_mixing_sample rng ~alpha)

let negative_binomial_pmf ~mean ~alpha k =
  if mean < 0.0 || alpha <= 0.0 then
    invalid_arg "Prob.negative_binomial_pmf: need mean >= 0 and alpha > 0";
  if k < 0 then 0.0
  else if mean = 0.0 then (if k = 0 then 1.0 else 0.0)
  else begin
    let kf = float_of_int k in
    let log_choose =
      log_gamma (kf +. alpha) -. log_gamma alpha -. log_factorial k
    in
    let p = mean /. (mean +. alpha) in
    exp (log_choose +. (kf *. log p) +. (alpha *. log (1.0 -. p)))
  end

let binomial_pmf ~n ~p k =
  if n < 0 || p < 0.0 || p > 1.0 then invalid_arg "Prob.binomial_pmf: bad parameters";
  if k < 0 || k > n then 0.0
  else begin
    let log_choose = log_factorial n -. log_factorial k -. log_factorial (n - k) in
    let kf = float_of_int k and nf = float_of_int n in
    if p = 0.0 then (if k = 0 then 1.0 else 0.0)
    else if p = 1.0 then (if k = n then 1.0 else 0.0)
    else exp (log_choose +. (kf *. log p) +. ((nf -. kf) *. log (1.0 -. p)))
  end

let truncated_poisson_mean ~lambda =
  if lambda <= 0.0 then invalid_arg "Prob.truncated_poisson_mean: need lambda > 0";
  lambda /. (1.0 -. exp (-.lambda))
