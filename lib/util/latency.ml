(* Geometric buckets: bucket i covers [lo * r^i, lo * r^(i+1)) with
   lo = 1e-3 ms (1 µs) and r chosen so 1024 buckets span to 3e5 ms
   (5 minutes): r = (3e5 / 1e-3)^(1/1024) ≈ 1.0192, i.e. ~2.3% relative
   resolution at every scale — ample for p50/p99/p999 over service times
   that range from microseconds (cache hits) to minutes (cold c880s). *)

let buckets = 1024
let lo_ms = 1e-3
let hi_ms = 3e5
let log_lo = log lo_ms
let inv_log_r = float_of_int buckets /. (log hi_ms -. log_lo)

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable max : float;
}

let create () =
  { counts = Array.make buckets 0; total = 0; sum = 0.0; max = 0.0 }

let bucket_of ms =
  if Float.is_nan ms then buckets - 1
  else if ms <= lo_ms then 0
  else if ms >= hi_ms then buckets - 1
  else
    let i = int_of_float ((log ms -. log_lo) *. inv_log_r) in
    max 0 (min (buckets - 1) i)

(* Upper edge: a percentile answer is then >= the true sample's value. *)
let edge_of i =
  exp (log_lo +. (float_of_int (i + 1) /. inv_log_r))

let add t ms =
  t.counts.(bucket_of ms) <- t.counts.(bucket_of ms) + 1;
  t.total <- t.total + 1;
  if Float.is_finite ms then begin
    t.sum <- t.sum +. ms;
    if ms > t.max then t.max <- ms
  end

let count t = t.total
let max_ms t = t.max
let sum_ms t = t.sum
let mean_ms t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let percentile t q =
  if t.total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    (* nearest-rank: the ceil(q*n)-th smallest observation *)
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    let seen = ref 0 in
    let result = ref t.max in
    (try
       for i = 0 to buckets - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           (* Cap by the exact max so p100 never overstates the tail. *)
           result := Float.min (edge_of i) t.max;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let merge dst src =
  for i = 0 to buckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.max > dst.max then dst.max <- src.max
