type job = {
  f : int -> unit;
  total : int;
  cursor : int Atomic.t;      (* next task index to claim *)
  unfinished : int Atomic.t;  (* tasks claimed-or-unclaimed but not completed *)
  mutable error : exn option; (* first exception raised by a task *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : job option;
  mutable epoch : int;   (* bumped once per submitted job *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

(* Claim and execute tasks until the job's cursor is exhausted.  The last
   worker to complete a task signals the submitter. *)
let execute t job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.cursor 1 in
    if i < job.total then begin
      (try job.f i
       with e ->
         Mutex.lock t.mutex;
         if job.error = None then job.error <- Some e;
         Mutex.unlock t.mutex);
      if Atomic.fetch_and_add job.unfinished (-1) = 1 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end;
      claim ()
    end
  in
  claim ()

let rec worker_loop t last_epoch =
  Mutex.lock t.mutex;
  (* Wait for a job this worker has not joined yet.  A worker can be
     scheduled so late that the submitter already finished the whole job
     alone and cleared [t.current]; any epoch bump observed while
     [t.current = None] therefore belongs to a completed job and is only
     recorded, never dereferenced. *)
  let seen = ref last_epoch in
  while (not t.stopping) && (t.current = None || t.epoch = !seen) do
    if t.current = None then seen := t.epoch;
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = Option.get t.current in
    Mutex.unlock t.mutex;
    execute t job;
    worker_loop t epoch
  end

let create ?domains () =
  let size = match domains with None -> default_domains () | Some d -> d in
  if size < 1 then invalid_arg "Parallel.create: need at least one domain";
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      epoch = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let size t = t.size

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Parallel.run: negative task count";
  if tasks > 0 then begin
    let job =
      { f; total = tasks; cursor = Atomic.make 0; unfinished = Atomic.make tasks;
        error = None }
    in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.run: pool is shut down"
    end;
    t.current <- Some job;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* The calling domain is a worker too. *)
    execute t job;
    Mutex.lock t.mutex;
    while Atomic.get job.unfinished > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    match job.error with Some e -> raise e | None -> ()
  end

let map t ~tasks f =
  if tasks = 0 then [||]
  else begin
    let results = Array.make tasks None in
    run t ~tasks (fun i -> results.(i) <- Some (f i));
    Array.map Option.get results
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
