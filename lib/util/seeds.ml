(* A stream's state is a pure digest of (master seed, full path): the path
   bytes are folded FNV-1a-style into the master's mixed state, with a
   splitmix64 finalizer after every segment so sibling paths avalanche
   apart.  Nothing here is mutable — the registry can be shared freely
   across threads and derivation order cannot matter. *)

type t = { root : int64; prefix : string }

(* splitmix64 finalizer (same constants as Rng.mix64, kept local so Seeds
   does not depend on Rng internals staying exposed). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fnv_prime = 0x100000001B3L

let fold_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* Segment separator folded explicitly, so "a/b" hashed as one string and
   as scope "a" + path "b" agree, while "ab" + "" cannot collide with
   "a" + "b". *)
let fold_segment h s = mix64 (fold_string (Int64.logxor h 0x2FL) s)

let create master_seed =
  { root = mix64 (Int64.of_int master_seed); prefix = "" }

let split_path path = String.split_on_char '/' path

let scope t segment =
  {
    t with
    prefix = (if t.prefix = "" then segment else t.prefix ^ "/" ^ segment);
  }

let path t = t.prefix

let fingerprint t p =
  let segments =
    (if t.prefix = "" then [] else split_path t.prefix)
    @ (if p = "" then [] else split_path p)
  in
  List.fold_left fold_segment t.root segments

let stream t p = Rng.of_state (fingerprint t p)

let seed t p = Int64.to_int (Int64.shift_right_logical (fingerprint t p) 2)
