let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let total xs =
  (* Kahan summation keeps the large dynamic ranges of fault weights exact
     enough for yield computations. *)
  let sum = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := t -. !sum -. y;
      sum := t)
    xs;
  !sum

let mean xs =
  check_nonempty "Stats.mean" xs;
  total xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
    total acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let geometric_mean xs =
  check_nonempty "Stats.geometric_mean" xs;
  Array.iter
    (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value")
    xs;
  exp (mean (Array.map log xs))

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let quantile xs q =
  check_nonempty "Stats.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.quantile: NaN in data")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = quantile xs 0.5

let check_paired name xs ys =
  check_nonempty name xs;
  if Array.length xs <> Array.length ys then
    invalid_arg (name ^ ": arrays of different lengths")

let correlation xs ys =
  check_paired "Stats.correlation" xs ys;
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

type linear_fit = { slope : float; intercept : float; r2 : float }

let linear_regression xs ys =
  check_paired "Stats.linear_regression" xs ys;
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx in
      sxy := !sxy +. (dx *. (ys.(i) -. my));
      sxx := !sxx +. (dx *. dx))
    xs;
  let slope = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i x ->
      let fitted = intercept +. (slope *. x) in
      let r = ys.(i) -. fitted and d = ys.(i) -. my in
      ss_res := !ss_res +. (r *. r);
      ss_tot := !ss_tot +. (d *. d))
    xs;
  let r2 = if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  { slope; intercept; r2 }

let rmse xs ys =
  check_paired "Stats.rmse" xs ys;
  let acc = Array.mapi (fun i x -> (x -. ys.(i)) ** 2.0) xs in
  sqrt (total acc /. float_of_int (Array.length xs))

let max_abs_error xs ys =
  check_paired "Stats.max_abs_error" xs ys;
  let worst = ref 0.0 in
  Array.iteri (fun i x -> worst := Float.max !worst (Float.abs (x -. ys.(i)))) xs;
  !worst
