(** Discrete probability distributions used by the yield and defect-count
    models (Poisson defect statistics, Stapper's negative-binomial clustered
    yield, Agrawal's faults-per-faulty-chip distribution). *)

val log_factorial : int -> float
(** [ln n!] via lgamma-style accumulation; exact for small [n]. *)

val poisson_pmf : lambda:float -> int -> float
(** P[N = k] for N ~ Poisson(lambda). *)

val poisson_cdf : lambda:float -> int -> float

val poisson_sample : Rng.t -> lambda:float -> int
(** Inversion for small lambda, normal approximation above 500. *)

val gamma_sample : Rng.t -> shape:float -> float
(** Gamma(shape, scale 1) via Marsaglia-Tsang squeeze (boosted below
    shape 1).  Mean and variance both equal [shape].
    @raise Invalid_argument unless [shape > 0]. *)

val gamma_mixing_sample : Rng.t -> alpha:float -> float
(** A mean-1 clustering severity factor: Gamma(alpha, 1/alpha), i.e.
    [gamma_sample ~shape:alpha / alpha].  [alpha = infinity] is the
    Poisson limit and returns exactly 1. *)

val negative_binomial_sample : Rng.t -> mean:float -> alpha:float -> int
(** One draw of the gamma-mixed Poisson behind {!negative_binomial_pmf}:
    [poisson_sample ~lambda:(mean * gamma_mixing_sample ~alpha)].
    Mean [mean], variance [mean + mean^2/alpha]; [alpha = infinity]
    degenerates to {!poisson_sample}. *)

val negative_binomial_pmf : mean:float -> alpha:float -> int -> float
(** Stapper's clustered defect count: gamma-mixed Poisson with clustering
    parameter [alpha] ([alpha -> infinity] recovers Poisson). *)

val binomial_pmf : n:int -> p:float -> int -> float

val truncated_poisson_mean : lambda:float -> float
(** E[N | N >= 1] for N ~ Poisson(lambda): the average number of faults on a
    *faulty* chip, the [n] parameter of Agrawal's model (eq. 2). *)
