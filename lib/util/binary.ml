exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type cursor = { data : bytes; mutable pos : int }

let cursor data = { data; pos = 0 }
let remaining c = Bytes.length c.data - c.pos
let at_end c = remaining c = 0

let need c n =
  if remaining c < n then
    corrupt "truncated input: need %d bytes at offset %d of %d" n c.pos
      (Bytes.length c.data)

(* ------------------------------------------------------------- writing *)

(* The bit pattern of [n] as an unsigned LEB128 — [lsr] makes the loop
   terminate even when the top (sign) bit is set, which zigzag outputs of
   large-magnitude negative ints legitimately do. *)
let write_varint_bits buf n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let write_varint buf n =
  if n < 0 then invalid_arg "Binary.write_varint: negative";
  write_varint_bits buf n

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let write_int buf n = write_varint_bits buf (zigzag n)

let write_byte buf n =
  if n < 0 || n > 0xff then invalid_arg "Binary.write_byte: out of range";
  Buffer.add_char buf (Char.chr n)

let write_bool buf b = write_byte buf (if b then 1 else 0)

let write_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let write_option w buf = function
  | None -> write_byte buf 0
  | Some x ->
      write_byte buf 1;
      w buf x

let write_array w buf a =
  write_varint buf (Array.length a);
  Array.iter (fun x -> w buf x) a

let write_list w buf l =
  write_varint buf (List.length l);
  List.iter (fun x -> w buf x) l

let write_bools_packed buf a =
  let n = Array.length a in
  write_varint buf n;
  let byte = ref 0 in
  for i = 0 to n - 1 do
    if a.(i) then byte := !byte lor (1 lsl (i land 7));
    if i land 7 = 7 then begin
      Buffer.add_char buf (Char.chr !byte);
      byte := 0
    end
  done;
  if n land 7 <> 0 then Buffer.add_char buf (Char.chr !byte)

(* ------------------------------------------------------------- reading *)

let read_byte c =
  need c 1;
  let b = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  b

let read_varint c =
  let rec go shift acc =
    if shift > Sys.int_size - 1 then corrupt "varint overflow at offset %d" c.pos;
    let b = read_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_int c = unzigzag (read_varint c)

let read_bool c =
  match read_byte c with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "bad bool byte %d at offset %d" b (c.pos - 1)

let read_float c =
  need c 8;
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code (Bytes.get c.data (c.pos + i))))
  done;
  c.pos <- c.pos + 8;
  Int64.float_of_bits !bits

let read_string c =
  let n = read_varint c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let read_option r c =
  match read_byte c with
  | 0 -> None
  | 1 -> Some (r c)
  | b -> corrupt "bad option tag %d at offset %d" b (c.pos - 1)

let read_array r c =
  let n = read_varint c in
  (* Sanity bound: a well-formed element occupies at least one byte, so a
     count beyond the remaining bytes is framing corruption, not a huge
     allocation request. *)
  if n > remaining c then
    corrupt "array count %d exceeds remaining %d bytes" n (remaining c);
  Array.init n (fun _ -> r c)

let read_list r c =
  let n = read_varint c in
  if n > remaining c then
    corrupt "list count %d exceeds remaining %d bytes" n (remaining c);
  List.init n (fun _ -> r c)

let read_bools_packed c =
  let n = read_varint c in
  let bytes_needed = (n + 7) / 8 in
  need c bytes_needed;
  let a =
    Array.init n (fun i ->
        let b = Char.code (Bytes.get c.data (c.pos + (i lsr 3))) in
        b land (1 lsl (i land 7)) <> 0)
  in
  c.pos <- c.pos + bytes_needed;
  a

(* ------------------------------------------------------------- crc32 *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Binary.crc32: range out of bounds";
  let table = Lazy.force crc_table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get data i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_string s = crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
