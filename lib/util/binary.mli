(** Binary framing primitives shared by the artifact store ({!Dl_store}):
    LEB128 varints, bit-exact floats, length-prefixed strings, and a
    table-driven CRC-32 — all over [Buffer] (writing) and [Bytes]
    (reading), allocation-light and dependency-free.

    Readers operate through a {!cursor} (bytes + mutable position) and
    raise {!Corrupt} on any truncated or malformed input; the store turns
    that into a cache miss rather than a crash. *)

exception Corrupt of string
(** Raised by every [read_*] on truncation or malformed framing. *)

type cursor = { data : bytes; mutable pos : int }

val cursor : bytes -> cursor
(** Cursor at offset 0. *)

val remaining : cursor -> int
val at_end : cursor -> bool

(** {2 Writing (into a [Buffer.t])} *)

val write_varint : Buffer.t -> int -> unit
(** Unsigned LEB128. @raise Invalid_argument on negative input. *)

val write_int : Buffer.t -> int -> unit
(** Signed integer via zigzag + LEB128. *)

val write_byte : Buffer.t -> int -> unit
(** One byte; the value must be in [0, 255]. *)

val write_bool : Buffer.t -> bool -> unit
val write_float : Buffer.t -> float -> unit
(** Bit-exact: the IEEE-754 image via [Int64.bits_of_float], little-endian
    (NaN payloads and signed zeros round-trip). *)

val write_string : Buffer.t -> string -> unit
(** Varint length prefix, then the raw bytes. *)

val write_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
val write_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit
(** Varint count, then each element. *)

val write_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

val write_bools_packed : Buffer.t -> bool array -> unit
(** Varint count, then the values packed 8 per byte (LSB first). *)

(** {2 Reading (from a {!cursor})} *)

val read_varint : cursor -> int
val read_int : cursor -> int
val read_byte : cursor -> int
val read_bool : cursor -> bool
val read_float : cursor -> float
val read_string : cursor -> string
val read_option : (cursor -> 'a) -> cursor -> 'a option
val read_array : (cursor -> 'a) -> cursor -> 'a array
val read_list : (cursor -> 'a) -> cursor -> 'a list
val read_bools_packed : cursor -> bool array

(** {2 Hashing} *)

val crc32 : ?crc:int32 -> bytes -> pos:int -> len:int -> int32
(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
    Pass [crc] to continue a running checksum. *)

val crc32_string : string -> int32
