(** Descriptive statistics and simple regression over float arrays. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton arrays. *)

val stddev : float array -> float

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values. *)

val min_max : float array -> float * float

val total : float array -> float
(** Kahan-compensated sum. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]], linear interpolation between order
    statistics ([Float.compare] ordering). Does not mutate the input.
    @raise Invalid_argument on an empty array, [q] outside [\[0,1\]], or
    NaN in the data (NaN has no rank, so any answer would be arbitrary). *)

val median : float array -> float

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. *)

type linear_fit = { slope : float; intercept : float; r2 : float }

val linear_regression : float array -> float array -> linear_fit
(** Ordinary least squares of [y] on [x]. *)

val rmse : float array -> float array -> float
(** Root mean squared error between paired arrays. *)

val max_abs_error : float array -> float array -> float
