(** A reusable fixed-size domain pool (OCaml 5 [Domain]) for data-parallel
    loops over independent work items.

    The pool owns [size - 1] worker domains; the calling domain is the
    remaining worker, so [create ~domains:1] degenerates to a plain serial
    loop with no domain ever spawned.  Tasks are distributed dynamically
    (an atomic cursor over the index range), which balances shards of
    uneven cost; determinism of the *results* is therefore the caller's
    job — write each task's output to a slot owned by its index and merge
    in index order.

    A pool is cheap to keep around and reusable across many [run]/[map]
    calls, but it is not re-entrant: issue one batch at a time from a
    single domain. *)

type t

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], the pool size used when
    [?domains] is omitted. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (default
    {!default_domains}).  @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Number of workers, including the calling domain. *)

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] evaluates [f 0 .. f (tasks - 1)], each exactly once,
    distributed over the pool; returns when all have completed.  If one or
    more tasks raise, the remaining tasks still run and one of the
    exceptions is re-raised in the caller. *)

val map : t -> tasks:int -> (int -> 'a) -> 'a array
(** [map t ~tasks f] is [[| f 0; ...; f (tasks - 1) |]] computed in
    parallel (results placed by index, so the output order is
    deterministic regardless of scheduling). *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must not be used
    afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on exit,
    including on exception. *)
