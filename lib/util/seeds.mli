(** Master-seed registry handing out isolated, replayable RNG streams
    keyed by hierarchical path.

    Every subsystem that consumes randomness names its stream with a
    slash-separated path (e.g. ["bench-serve/client-3/req-17"]) and gets a
    splitmix64 generator that is a {e pure function of (master seed, path)}:

    - {b replayable} — the same master seed and path always yield the same
      stream, across processes and platforms;
    - {b disjoint} — distinct paths yield statistically independent
      streams (the path is folded through a 64-bit avalanche mix, so even
      sibling paths like [".../req-16"] and [".../req-17"] share nothing);
    - {b order-independent} — deriving a stream neither consumes state
      from nor perturbs the registry, so the set of streams a run uses,
      and the order it asks for them in, cannot change any stream's
      contents.  This is what makes a multi-threaded load generator
      deterministic: each request's randomness depends only on its own
      path, never on scheduling.

    [scope] pre-applies a path prefix, giving a subsystem its own registry
    view without sharing the master: [stream (scope t "atpg") "random"]
    equals [stream t "atpg/random"]. *)

type t
(** An immutable registry handle (master seed plus path prefix). *)

val create : int -> t
(** [create master_seed] roots a registry at an arbitrary integer seed. *)

val scope : t -> string -> t
(** [scope t segment] is the registry with [segment] appended to the path
    prefix.  Scoping is associative: [scope (scope t "a") "b"] names the
    same streams as [scope t "a/b"]. *)

val path : t -> string
(** The accumulated path prefix ([""] at the root). *)

val stream : t -> string -> Rng.t
(** [stream t path] is the stream named by [path] under [t]'s prefix —
    a fresh, independently advancing generator on every call (two calls
    return equal but independent streams). *)

val seed : t -> string -> int
(** [seed t path] is a 62-bit non-negative integer seed derived the same
    way as {!stream} — for APIs that take an [int] seed rather than an
    {!Rng.t}.  Equal to [seed] of the same path every time; distinct paths
    give distinct seeds with overwhelming probability. *)

val fingerprint : t -> string -> int64
(** The raw 64-bit digest of [(master, prefix, path)] that {!stream} and
    {!seed} are built from — exposed for tests and trace records. *)
