(** Log-bucketed latency accumulator with high-quantile fidelity.

    The previous service-time ring kept the last 512 samples, which makes
    p99 noisy and p999 meaningless (at 512 samples the 99.9th percentile
    is literally the maximum).  This accumulator instead counts every
    observation into geometrically spaced buckets — ~2.3% relative width
    from 1 µs to 5 minutes — so any percentile of the {e whole} run is
    available in O(buckets), with bounded (~2.3%) relative error and no
    per-observation allocation.

    Not thread-safe; callers serialize access ({!Dl_serve.Metrics} wraps
    one in its lock, the load generator merges per-client accumulators
    after the run). *)

type t

val create : unit -> t

val add : t -> float -> unit
(** [add t ms] records one observation in milliseconds.  Non-finite and
    negative values are counted but clamped into the extreme buckets. *)

val count : t -> int
(** Observations recorded so far. *)

val max_ms : t -> float
(** Largest observation recorded so far ([0.0] when empty) — exact, not
    bucketed. *)

val sum_ms : t -> float
(** Sum of all observations (exact), for means over the whole run. *)

val mean_ms : t -> float
(** [sum_ms / count]; [0.0] when empty. *)

val percentile : t -> float -> float
(** [percentile t q] for [q] in [\[0, 1\]]: an upper bucket edge covering
    the nearest-rank sample, within ~2.3% of the true value.  Defined as
    [0.0] on an empty accumulator — never NaN — so pre-first-request
    stats print as zeros rather than [nan]. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s counts into [dst]. *)
