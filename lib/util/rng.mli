(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    experiment is reproducible from an explicit seed.  The generator is
    splitmix64 (Steele, Lea & Flood 2014): fast, statistically strong for
    simulation purposes, and trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an arbitrary integer seed. *)

val of_state : int64 -> t
(** [of_state s] makes a generator whose splitmix64 state starts exactly
    at [s] — the hook {!Seeds} uses to turn a path digest into a stream.
    Prefer {!create} (which pre-mixes) for ad-hoc integer seeds. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples Exp(lambda) (mean [1/lambda]). *)

val gaussian : t -> float
(** Standard normal sample (Box–Muller). *)

val log_uniform : t -> float -> float -> float
(** [log_uniform t lo hi] samples so that the logarithm is uniform on
    [\[log lo, log hi\]]; requires [0 < lo <= hi]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> 'a array -> int -> 'a array
(** [sample t arr k] draws [k] distinct elements uniformly (without
    replacement). Raises [Invalid_argument] if [k > Array.length arr]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val word : t -> int64
(** Alias of {!bits64}, used to fill parallel-pattern simulation words. *)
