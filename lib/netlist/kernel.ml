(* Flat compiled form of a circuit: every per-node datum lives in a dense int
   array so the simulation hot loops touch no heap blocks besides the arrays
   themselves.  Fanin and fanout adjacency use CSR layout (concatenated index
   arrays plus an offsets array with a final sentinel), node values live in an
   int64 bigarray so reads and writes stay unboxed on the native compiler. *)

type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  circuit : Circuit.t;
  n : int;
  opcode : int array;
  level : int array;
  fanin_off : int array;
  fanin : int array;
  fanout_off : int array;
  fanout : int array;
  inputs : int array;
  outputs : int array;
  gate_order : int array;
  n_levels : int;
  level_off : int array;
  ffr_stem : int array;
  ffr_index : int array;
  ffr_stems : int array;
  n_ffrs : int;
}

let alloc len =
  let buf = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout len in
  Bigarray.Array1.fill buf 0L;
  buf

let create_words t = alloc t.n

let of_circuit (c : Circuit.t) =
  let n = Array.length c.nodes in
  let opcode = Array.make n 0 in
  let fanin_off = Array.make (n + 1) 0 in
  let total_fanin = ref 0 in
  for id = 0 to n - 1 do
    let nd = c.nodes.(id) in
    let arity = Array.length nd.fanin in
    (* The one-time arity validation the per-eval [Gate.check] used to do:
       after this, every kernel consumer may evaluate unchecked. *)
    if not (Gate.arity_ok nd.kind arity) then
      raise
        (Circuit.Malformed
           (Printf.sprintf "Kernel.of_circuit: %s node %s has %d inputs"
              (Gate.to_string nd.kind) nd.name arity));
    opcode.(id) <- Gate.opcode nd.kind;
    total_fanin := !total_fanin + arity
  done;
  let fanin = Array.make (max 1 !total_fanin) 0 in
  let pos = ref 0 in
  for id = 0 to n - 1 do
    fanin_off.(id) <- !pos;
    let src = c.nodes.(id).fanin in
    Array.blit src 0 fanin !pos (Array.length src);
    pos := !pos + Array.length src
  done;
  fanin_off.(n) <- !pos;
  let fanout_off = Array.make (n + 1) 0 in
  let total_fanout = Array.fold_left (fun a fo -> a + Array.length fo) 0 c.fanouts in
  let fanout = Array.make (max 1 total_fanout) 0 in
  let pos = ref 0 in
  for id = 0 to n - 1 do
    fanout_off.(id) <- !pos;
    let dst = c.fanouts.(id) in
    Array.blit dst 0 fanout !pos (Array.length dst);
    pos := !pos + Array.length dst
  done;
  fanout_off.(n) <- !pos;
  let n_levels = 1 + Array.fold_left max 0 c.levels in
  let level_off = Array.make (n_levels + 1) 0 in
  Array.iter (fun l -> level_off.(l + 1) <- level_off.(l + 1) + 1) c.levels;
  for l = 1 to n_levels do
    level_off.(l) <- level_off.(l) + level_off.(l - 1)
  done;
  let gate_order =
    Array.of_seq
      (Seq.filter
         (fun id -> c.nodes.(id).kind <> Gate.Input)
         (Array.to_seq c.topo_order))
  in
  (* Fanout-free-region partition.  A node is an FFR stem iff its signal
     branches (fanout count <> 1 — this includes dead nodes, and a reader
     using the same signal on two pins, which appears twice in [fanout]) or
     it is a primary output; every other node has exactly one reader and
     belongs to that reader's region.  Reverse topological order resolves
     each node's unique reader before the node itself, so the chain
     collapses in one pass. *)
  let is_po = Array.make n false in
  Array.iter (fun o -> is_po.(o) <- true) c.outputs;
  let ffr_stem = Array.make n (-1) in
  for i = n - 1 downto 0 do
    let id = c.topo_order.(i) in
    let deg = fanout_off.(id + 1) - fanout_off.(id) in
    if deg <> 1 || is_po.(id) then ffr_stem.(id) <- id
    else ffr_stem.(id) <- ffr_stem.(fanout.(fanout_off.(id)))
  done;
  let n_ffrs = ref 0 in
  for id = 0 to n - 1 do
    if ffr_stem.(id) = id then incr n_ffrs
  done;
  let ffr_stems = Array.make (max 1 !n_ffrs) 0 in
  let stem_slot = Array.make n (-1) in
  let next = ref 0 in
  for id = 0 to n - 1 do
    if ffr_stem.(id) = id then begin
      ffr_stems.(!next) <- id;
      stem_slot.(id) <- !next;
      incr next
    end
  done;
  let ffr_index = Array.map (fun stem -> stem_slot.(stem)) ffr_stem in
  {
    circuit = c;
    n;
    opcode;
    level = c.levels;
    fanin_off;
    fanin;
    fanout_off;
    fanout;
    inputs = c.inputs;
    outputs = c.outputs;
    gate_order;
    n_levels;
    level_off;
    ffr_stem;
    ffr_index;
    ffr_stems;
    n_ffrs = !n_ffrs;
  }

(* Single-gate evaluation against the CSR slice.  Specialized unary and
   binary paths cover the overwhelming majority of ISCAS gates; the n-ary
   fallback folds with a local ref, which the native compiler keeps as an
   unboxed mutable.  No allocation on any path. *)
let[@inline] eval_unsafe t (buf : words) id =
  let off = Array.unsafe_get t.fanin_off id in
  let len = Array.unsafe_get t.fanin_off (id + 1) - off in
  let op = Array.unsafe_get t.opcode id in
  if len = 2 then begin
    let a = Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin off) in
    let b = Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin (off + 1)) in
    let v =
      if op = Gate.op_and then Int64.logand a b
      else if op = Gate.op_nand then Int64.lognot (Int64.logand a b)
      else if op = Gate.op_or then Int64.logor a b
      else if op = Gate.op_nor then Int64.lognot (Int64.logor a b)
      else if op = Gate.op_xor then Int64.logxor a b
      else Int64.lognot (Int64.logxor a b)
    in
    Bigarray.Array1.unsafe_set buf id v
  end
  else if len = 1 then begin
    let a = Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin off) in
    Bigarray.Array1.unsafe_set buf id
      (if Gate.op_inverts op then Int64.lognot a else a)
  end
  else if len = 0 then invalid_arg "Kernel.eval_node: node has no fanin"
  else begin
    let last = off + len - 1 in
    if op <= Gate.op_nand then begin
      let acc = ref (Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin off)) in
      for k = off + 1 to last do
        acc :=
          Int64.logand !acc
            (Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin k))
      done;
      Bigarray.Array1.unsafe_set buf id
        (if op = Gate.op_nand then Int64.lognot !acc else !acc)
    end
    else if op <= Gate.op_nor then begin
      let acc = ref (Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin off)) in
      for k = off + 1 to last do
        acc :=
          Int64.logor !acc
            (Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin k))
      done;
      Bigarray.Array1.unsafe_set buf id
        (if op = Gate.op_nor then Int64.lognot !acc else !acc)
    end
    else begin
      let acc = ref (Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin off)) in
      for k = off + 1 to last do
        acc :=
          Int64.logxor !acc
            (Bigarray.Array1.unsafe_get buf (Array.unsafe_get t.fanin k))
      done;
      Bigarray.Array1.unsafe_set buf id
        (if op = Gate.op_xnor then Int64.lognot !acc else !acc)
    end
  end

let check_dim fn t buf =
  if Bigarray.Array1.dim buf < t.n then
    invalid_arg (fn ^ ": values buffer shorter than node count")

let eval_node t buf id =
  check_dim "Kernel.eval_node" t buf;
  if id < 0 || id >= t.n then invalid_arg "Kernel.eval_node: id out of range";
  eval_unsafe t buf id

let run_into t buf =
  check_dim "Kernel.run_into" t buf;
  let order = t.gate_order in
  for i = 0 to Array.length order - 1 do
    eval_unsafe t buf (Array.unsafe_get order i)
  done

(* --- 4-word (256-pattern) wide path ----------------------------------------

   Node [i]'s four words live at [4i .. 4i+3]; word [w] carries patterns
   [64w .. 64w+63] of the block.  Each CSR fanin fetch is amortized over
   256 patterns: the index arithmetic and opcode dispatch run once per
   sub-word group of four, and the inner [w] loops carry only unboxed
   bigarray reads/writes. *)

let create_words4 t = alloc (4 * t.n)

let[@inline] eval4_unsafe t (buf : words) id =
  let off = Array.unsafe_get t.fanin_off id in
  let len = Array.unsafe_get t.fanin_off (id + 1) - off in
  let op = Array.unsafe_get t.opcode id in
  let o4 = id * 4 in
  if len = 2 then begin
    let a4 = Array.unsafe_get t.fanin off * 4 in
    let b4 = Array.unsafe_get t.fanin (off + 1) * 4 in
    for w = 0 to 3 do
      let a = Bigarray.Array1.unsafe_get buf (a4 + w) in
      let b = Bigarray.Array1.unsafe_get buf (b4 + w) in
      let v =
        if op = Gate.op_and then Int64.logand a b
        else if op = Gate.op_nand then Int64.lognot (Int64.logand a b)
        else if op = Gate.op_or then Int64.logor a b
        else if op = Gate.op_nor then Int64.lognot (Int64.logor a b)
        else if op = Gate.op_xor then Int64.logxor a b
        else Int64.lognot (Int64.logxor a b)
      in
      Bigarray.Array1.unsafe_set buf (o4 + w) v
    done
  end
  else if len = 1 then begin
    let a4 = Array.unsafe_get t.fanin off * 4 in
    let inv = Gate.op_inverts op in
    for w = 0 to 3 do
      let a = Bigarray.Array1.unsafe_get buf (a4 + w) in
      Bigarray.Array1.unsafe_set buf (o4 + w) (if inv then Int64.lognot a else a)
    done
  end
  else if len = 0 then invalid_arg "Kernel.eval4_unsafe: node has no fanin"
  else begin
    let last = off + len - 1 in
    for w = 0 to 3 do
      let s0 = Array.unsafe_get t.fanin off * 4 in
      if op <= Gate.op_nand then begin
        let acc = ref (Bigarray.Array1.unsafe_get buf (s0 + w)) in
        for k = off + 1 to last do
          acc :=
            Int64.logand !acc
              (Bigarray.Array1.unsafe_get buf ((Array.unsafe_get t.fanin k * 4) + w))
        done;
        Bigarray.Array1.unsafe_set buf (o4 + w)
          (if op = Gate.op_nand then Int64.lognot !acc else !acc)
      end
      else if op <= Gate.op_nor then begin
        let acc = ref (Bigarray.Array1.unsafe_get buf (s0 + w)) in
        for k = off + 1 to last do
          acc :=
            Int64.logor !acc
              (Bigarray.Array1.unsafe_get buf ((Array.unsafe_get t.fanin k * 4) + w))
        done;
        Bigarray.Array1.unsafe_set buf (o4 + w)
          (if op = Gate.op_nor then Int64.lognot !acc else !acc)
      end
      else begin
        let acc = ref (Bigarray.Array1.unsafe_get buf (s0 + w)) in
        for k = off + 1 to last do
          acc :=
            Int64.logxor !acc
              (Bigarray.Array1.unsafe_get buf ((Array.unsafe_get t.fanin k * 4) + w))
        done;
        Bigarray.Array1.unsafe_set buf (o4 + w)
          (if op = Gate.op_xnor then Int64.lognot !acc else !acc)
      end
    done
  end

let check_dim4 fn t buf =
  if Bigarray.Array1.dim buf < 4 * t.n then
    invalid_arg (fn ^ ": values buffer shorter than 4x node count")

let run_into4 t buf =
  check_dim4 "Kernel.run_into4" t buf;
  let order = t.gate_order in
  for i = 0 to Array.length order - 1 do
    eval4_unsafe t buf (Array.unsafe_get order i)
  done
