(** Combinational gate primitives of the ISCAS-85 benchmark suite.

    [Input] marks primary-input nodes; all other kinds are logic gates.
    Gates are n-ary where the function allows it ([Not]/[Buf] are unary). *)

type kind =
  | Input
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

val all_logic : kind list
(** Every kind except [Input]. *)

val to_string : kind -> string
(** Upper-case ISCAS name, e.g. [Nand -> "NAND"]. *)

val of_string : string -> kind option
(** Case-insensitive parse of the ISCAS name ([Input] is not parseable this
    way; the bench format declares inputs separately). *)

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may have the given number of inputs. *)

val eval : kind -> bool array -> bool
(** Evaluate on concrete inputs.  Raises [Invalid_argument] when applied to
    [Input].  Arity is {e not} validated here: gates inside a finalized
    {!Circuit.t} were checked once at construction ([Builder.finalize]), so
    the simulation hot paths skip the per-call check.  Use {!eval_checked}
    for fanin arrays of unknown provenance. *)

val eval_checked : kind -> bool array -> bool
(** {!eval} preceded by an arity check; raises [Invalid_argument] on
    violations (e.g. [Not] with two inputs). *)

val eval_word : kind -> int64 array -> int64
(** Bitwise 64-way parallel evaluation: bit [i] of the result is the gate
    evaluated on bit [i] of each input word.  Arity is not validated (see
    {!eval}); use {!eval_word_checked} for unvalidated inputs. *)

val eval_word_checked : kind -> int64 array -> int64
(** {!eval_word} preceded by an arity check. *)

val controlling_value : kind -> bool option
(** The input value that forces the output regardless of other inputs
    (e.g. [Some false] for AND/NAND); [None] for XOR/XNOR/BUF/NOT. *)

val controlled_response : kind -> bool
(** Output when some input is at the controlling value.  Meaningful only
    when {!controlling_value} is [Some _]. *)

val inversion : kind -> bool
(** Whether the gate inverts ([Not], [Nand], [Nor], [Xnor]). *)

(** {2 Integer opcodes}

    Dense int codes for flat circuit representations ({!Kernel}): a kernel
    stores one opcode per node and dispatches on plain integer compares,
    avoiding variant pattern-matching and enabling tight unboxed loops. *)

val op_and : int
val op_nand : int
val op_or : int
val op_nor : int
val op_xor : int
val op_xnor : int
val op_buf : int
val op_not : int
val op_input : int

val opcode : kind -> int
(** Injective mapping [kind -> 0..8]. *)

val kind_of_opcode : int -> kind
(** Inverse of {!opcode}; raises [Invalid_argument] on out-of-range codes. *)

val op_inverts : int -> bool
(** Opcode-level {!inversion}: true for NAND/NOR/XNOR/NOT.  A unary n-ary
    gate (e.g. a 1-input NOR) reduces to [if op_inverts op then lognot x
    else x], which is what the kernels' unary fast path relies on. *)
