type kind =
  | Input
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

let all_logic = [ Buf; Not; And; Nand; Or; Nor; Xor; Xnor ]

let to_string = function
  | Input -> "INPUT"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let of_string s =
  match String.uppercase_ascii s with
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | _ -> None

let arity_ok kind n =
  match kind with
  | Input -> n = 0
  | Buf | Not -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 1

let check kind inputs =
  let n = Array.length inputs in
  if not (arity_ok kind n) then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s cannot take %d inputs" (to_string kind) n)

(* [eval]/[eval_word] trust the caller on arity: gates reached through a
   finalized {!Circuit.t} were validated once by [Builder.finalize], so the
   simulators do not pay for the check on every evaluation.  External
   callers with unvalidated fanin arrays use the [_checked] wrappers. *)
let eval kind inputs =
  match kind with
  | Input -> invalid_arg "Gate.eval: Input has no function"
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And -> Array.for_all Fun.id inputs
  | Nand -> not (Array.for_all Fun.id inputs)
  | Or -> Array.exists Fun.id inputs
  | Nor -> not (Array.exists Fun.id inputs)
  | Xor -> Array.fold_left (fun acc b -> if b then not acc else acc) false inputs
  | Xnor -> Array.fold_left (fun acc b -> if b then not acc else acc) true inputs

let eval_checked kind inputs =
  check kind inputs;
  eval kind inputs

let eval_word kind inputs =
  let fold f init = Array.fold_left f init inputs in
  match kind with
  | Input -> invalid_arg "Gate.eval_word: Input has no function"
  | Buf -> inputs.(0)
  | Not -> Int64.lognot inputs.(0)
  | And -> fold Int64.logand (-1L)
  | Nand -> Int64.lognot (fold Int64.logand (-1L))
  | Or -> fold Int64.logor 0L
  | Nor -> Int64.lognot (fold Int64.logor 0L)
  | Xor -> fold Int64.logxor 0L
  | Xnor -> Int64.lognot (fold Int64.logxor 0L)

let eval_word_checked kind inputs =
  check kind inputs;
  eval_word kind inputs

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Buf | Not | Xor | Xnor -> None

let controlled_response = function
  | And -> false
  | Nand -> true
  | Or -> true
  | Nor -> false
  | Input | Buf | Not | Xor | Xnor ->
      invalid_arg "Gate.controlled_response: gate has no controlling value"

let inversion = function
  | Not | Nand | Nor | Xnor -> true
  | Input | Buf | And | Or | Xor -> false

(* Dense integer opcodes for flat (CSR) circuit representations.  The
   numbering groups the two-input workhorses first so dispatch in compiled
   kernels can test the common cases before the fallback. *)

let op_and = 0
let op_nand = 1
let op_or = 2
let op_nor = 3
let op_xor = 4
let op_xnor = 5
let op_buf = 6
let op_not = 7
let op_input = 8

let opcode = function
  | And -> op_and
  | Nand -> op_nand
  | Or -> op_or
  | Nor -> op_nor
  | Xor -> op_xor
  | Xnor -> op_xnor
  | Buf -> op_buf
  | Not -> op_not
  | Input -> op_input

let kind_of_opcode op =
  if op = op_and then And
  else if op = op_nand then Nand
  else if op = op_or then Or
  else if op = op_nor then Nor
  else if op = op_xor then Xor
  else if op = op_xnor then Xnor
  else if op = op_buf then Buf
  else if op = op_not then Not
  else if op = op_input then Input
  else invalid_arg "Gate.kind_of_opcode"

let op_inverts op = op = op_nand || op = op_nor || op = op_xnor || op = op_not
