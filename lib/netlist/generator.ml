module Rng = Dl_util.Rng
module Seeds = Dl_util.Seeds

let fresh_name prefix counter =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

let random ?(seed = 1) ?(title = "random") ~inputs ~outputs ~profile () =
  if inputs <= 0 then invalid_arg "Generator.random: need inputs > 0";
  if outputs <= 0 then invalid_arg "Generator.random: need outputs > 0";
  List.iter
    (fun (_, count) ->
      if count < 0 then invalid_arg "Generator.random: negative count")
    profile;
  let rng = Rng.create seed in
  let builder = Circuit.Builder.create ~title in
  let counter = ref 0 in
  let signals = ref [||] in
  let unused = Hashtbl.create 64 in
  let use_count = Hashtbl.create 64 in
  let is_pi = Hashtbl.create 64 in
  (* Internal nets are single-use (tree-like) while primary inputs fan out
     freely: reconvergence through correlated internal functions is what
     breeds redundant (untestable) logic in random netlists, whereas leaf
     sharing keeps the circuit almost fully irredundant. *)
  let max_fanout nm = if Hashtbl.mem is_pi nm then 6 else 1 in
  let uses nm = Option.value ~default:0 (Hashtbl.find_opt use_count nm) in
  let push name =
    signals := Array.append !signals [| name |];
    Hashtbl.replace unused name ()
  in
  let pi_names = Array.init inputs (fun i -> Printf.sprintf "pi%d" (i + 1)) in
  Array.iter
    (fun nm ->
      Circuit.Builder.add_input builder nm;
      Hashtbl.replace is_pi nm ();
      push nm)
    pi_names;
  (* Pick a fanin signal: prefer unused signals while any remain (so every PI
     gets consumed), otherwise draw from a locality window over recent
     signals to control depth. *)
  (* Pick a fanin signal distinct from those already chosen for this gate:
     duplicate fanins create constants (XOR(a,a) = 0) and redundant logic. *)
  let pick_fanin chosen =
    let excluded nm = List.mem nm chosen in
    let unused_pool =
      Hashtbl.fold (fun nm () acc -> if excluded nm then acc else nm :: acc) unused []
      |> List.sort compare |> Array.of_list
    in
    if Array.length unused_pool > 0 && Rng.bernoulli rng 0.7 then
      Some (Rng.choose rng unused_pool)
    else begin
      let n = Array.length !signals in
      let window = max 4 (n / 2) in
      let rec draw tries =
        if tries > 50 then
          if Array.length unused_pool > 0 then Some (Rng.choose rng unused_pool)
          else None
        else begin
          let idx =
            if Rng.bernoulli rng 0.4 then n - 1 - Rng.int rng (min window n)
            else Rng.int rng n
          in
          let nm = !signals.(idx) in
          if excluded nm || uses nm >= max_fanout nm then draw (tries + 1) else Some nm
        end
      in
      draw 0
    end
  in
  let arity_of kind =
    match kind with
    | Gate.Not | Gate.Buf -> 1
    | Gate.Xor | Gate.Xnor -> 2
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        (* Mostly 2-input with a tail of 3- and 4-input gates, as in the
           ISCAS-85 standard-cell mappings. *)
        let r = Rng.float rng 1.0 in
        if r < 0.65 then 2 else if r < 0.9 then 3 else 4
    | Gate.Input ->
        invalid_arg
          "Generator.random: Input is not a gate kind; remove it from the \
           profile"
  in
  let emit_gate kind =
    let arity = min (arity_of kind) (Array.length !signals) in
    let rec gather acc k =
      if k = 0 then acc
      else
        match pick_fanin acc with
        | Some nm -> gather (nm :: acc) (k - 1)
        | None -> acc
    in
    let fanin = gather [] arity in
    let name = fresh_name "g" counter in
    Circuit.Builder.add_gate builder name kind fanin;
    List.iter
      (fun nm ->
        Hashtbl.remove unused nm;
        Hashtbl.replace use_count nm (uses nm + 1))
      fanin;
    push name
  in
  (* Interleave the profile kinds into one shuffled work list so the mix is
     spread through the depth of the circuit. *)
  let work =
    List.concat_map (fun (kind, count) -> List.init count (fun _ -> kind)) profile
    |> Array.of_list
  in
  Rng.shuffle rng work;
  Array.iter emit_gate work;
  (* Funnel surplus sinks into NAND gates until exactly [outputs] remain. *)
  let rec funnel () =
    let sinks = Hashtbl.fold (fun nm () acc -> nm :: acc) unused [] in
    let sinks = List.sort compare sinks in
    let n = List.length sinks in
    if n > outputs then begin
      let take = min 4 (n - outputs + 1) in
      let chosen = List.filteri (fun i _ -> i < take) sinks in
      let name = fresh_name "g" counter in
      Circuit.Builder.add_gate builder name Gate.Nand chosen;
      List.iter (fun nm -> Hashtbl.remove unused nm) chosen;
      push name;
      funnel ()
    end
    else if n < outputs then begin
      (* Not enough sinks: tap internal signals through buffers. *)
      let name = fresh_name "po_buf" counter in
      let src = Rng.choose rng !signals in
      Circuit.Builder.add_gate builder name Gate.Buf [ src ];
      push name;
      funnel ()
    end
    else List.iter (Circuit.Builder.add_output builder) sinks
  in
  funnel ();
  Circuit.Builder.finalize builder

(* --- Structured generators -------------------------------------------- *)

let full_adder builder ~a ~b ~cin ~sum ~cout =
  let t1 = sum ^ "_t1" and t2 = sum ^ "_t2" and t3 = sum ^ "_t3" in
  Circuit.Builder.add_gate builder t1 Gate.Xor [ a; b ];
  Circuit.Builder.add_gate builder sum Gate.Xor [ t1; cin ];
  Circuit.Builder.add_gate builder t2 Gate.And [ t1; cin ];
  Circuit.Builder.add_gate builder t3 Gate.And [ a; b ];
  Circuit.Builder.add_gate builder cout Gate.Or [ t2; t3 ]

let ripple_adder ?title n =
  if n <= 0 then invalid_arg "Generator.ripple_adder: need n > 0";
  let title = Option.value title ~default:(Printf.sprintf "add%d" n) in
  let builder = Circuit.Builder.create ~title in
  for i = 0 to n - 1 do
    Circuit.Builder.add_input builder (Printf.sprintf "a%d" i);
    Circuit.Builder.add_input builder (Printf.sprintf "b%d" i)
  done;
  Circuit.Builder.add_input builder "cin";
  let carry = ref "cin" in
  for i = 0 to n - 1 do
    let sum = Printf.sprintf "s%d" i in
    let cout = if i = n - 1 then "cout" else Printf.sprintf "c%d" i in
    full_adder builder
      ~a:(Printf.sprintf "a%d" i)
      ~b:(Printf.sprintf "b%d" i)
      ~cin:!carry ~sum ~cout;
    Circuit.Builder.add_output builder sum;
    carry := cout
  done;
  Circuit.Builder.add_output builder "cout";
  Circuit.Builder.finalize builder

let reduction ?title ~prefix ~leaf_kind ~node_kind n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Generator.%s: negative width %d" prefix n);
  let title = Option.value title ~default:(Printf.sprintf "%s%d" prefix n) in
  let builder = Circuit.Builder.create ~title in
  let counter = ref 0 in
  let leaves =
    List.init n (fun i ->
        let nm = Printf.sprintf "x%d" i in
        Circuit.Builder.add_input builder nm;
        nm)
  in
  let leaves =
    match leaf_kind with
    | None -> leaves
    | Some (kind, pair) ->
        (* Combine consecutive pairs of inputs (used by the comparator,
           which XNORs a_i with b_i). *)
        ignore pair;
        List.init n (fun i ->
            let a = Printf.sprintf "x%d" i in
            let b = Printf.sprintf "y%d" i in
            Circuit.Builder.add_input builder b;
            let nm = fresh_name "eq" counter in
            Circuit.Builder.add_gate builder nm kind [ a; b ];
            nm)
  in
  let rec reduce = function
    | [] ->
        (* Reached exactly when the caller asked for a zero-input tree. *)
        invalid_arg
          (Printf.sprintf "Generator.%s: cannot reduce zero inputs" prefix)
    | [ last ] -> last
    | items ->
        let rec pair_up = function
          | a :: b :: rest ->
              let nm = fresh_name "r" counter in
              Circuit.Builder.add_gate builder nm node_kind [ a; b ];
              nm :: pair_up rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        reduce (pair_up items)
  in
  let out = reduce leaves in
  Circuit.Builder.add_output builder out;
  Circuit.Builder.finalize builder

let parity_tree ?title n =
  reduction ?title ~prefix:"par" ~leaf_kind:None ~node_kind:Gate.Xor n

let equality_comparator ?title n =
  reduction ?title ~prefix:"cmp" ~leaf_kind:(Some (Gate.Xnor, true)) ~node_kind:Gate.And n

let multiplexer ?title s =
  if s <= 0 || s > 6 then invalid_arg "Generator.multiplexer: need 0 < s <= 6";
  let title = Option.value title ~default:(Printf.sprintf "mux%d" s) in
  let builder = Circuit.Builder.create ~title in
  let n = 1 lsl s in
  for i = 0 to n - 1 do
    Circuit.Builder.add_input builder (Printf.sprintf "d%d" i)
  done;
  for i = 0 to s - 1 do
    let sel = Printf.sprintf "sel%d" i in
    Circuit.Builder.add_input builder sel;
    Circuit.Builder.add_gate builder (sel ^ "_n") Gate.Not [ sel ]
  done;
  let terms =
    List.init n (fun i ->
        let selectors =
          List.init s (fun b ->
              let sel = Printf.sprintf "sel%d" b in
              if i land (1 lsl b) <> 0 then sel else sel ^ "_n")
        in
        let nm = Printf.sprintf "and%d" i in
        Circuit.Builder.add_gate builder nm Gate.And
          (Printf.sprintf "d%d" i :: selectors);
        nm)
  in
  Circuit.Builder.add_gate builder "out" Gate.Or terms;
  Circuit.Builder.add_output builder "out";
  Circuit.Builder.finalize builder

let decoder ?title s =
  if s <= 0 || s > 6 then invalid_arg "Generator.decoder: need 0 < s <= 6";
  let title = Option.value title ~default:(Printf.sprintf "dec%d" s) in
  let builder = Circuit.Builder.create ~title in
  for i = 0 to s - 1 do
    let a = Printf.sprintf "a%d" i in
    Circuit.Builder.add_input builder a;
    Circuit.Builder.add_gate builder (a ^ "_n") Gate.Not [ a ]
  done;
  for code = 0 to (1 lsl s) - 1 do
    let terms =
      List.init s (fun b ->
          let a = Printf.sprintf "a%d" b in
          if code land (1 lsl b) <> 0 then a else a ^ "_n")
    in
    let nm = Printf.sprintf "o%d" code in
    Circuit.Builder.add_gate builder nm Gate.And terms;
    Circuit.Builder.add_output builder nm
  done;
  Circuit.Builder.finalize builder

let priority_controller ?title ~slices () =
  if slices < 2 then invalid_arg "Generator.priority_controller: need slices >= 2";
  let title = Option.value title ~default:(Printf.sprintf "pric%d" slices) in
  let b = Circuit.Builder.create ~title in
  let g = Circuit.Builder.add_gate b in
  let idx fmt i = Printf.sprintf fmt i in
  (* Inputs: per slice an enable e_i, data bits a_i and b_i, select s_i. *)
  for i = 0 to slices - 1 do
    Circuit.Builder.add_input b (idx "a%d" i);
    Circuit.Builder.add_input b (idx "b%d" i);
    Circuit.Builder.add_input b (idx "s%d" i);
    Circuit.Builder.add_input b (idx "e%d" i)
  done;
  (* Stage A: per-slice decode.  x_i = s_i ? a_i xor b_i : 1. *)
  for i = 0 to slices - 1 do
    g (idx "sn%d" i) Gate.Not [ idx "s%d" i ];
    g (idx "m%d" i) Gate.Nand [ idx "a%d" i; idx "s%d" i ];
    g (idx "n%d" i) Gate.Nor [ idx "b%d" i; idx "sn%d" i ];
    g (idx "x%d" i) Gate.Xor [ idx "m%d" i; idx "n%d" i ]
  done;
  (* Stage B: enable gating and its complement. *)
  for i = 0 to slices - 1 do
    g (idx "y%d" i) Gate.Nand [ idx "x%d" i; idx "e%d" i ];
    g (idx "w%d" i) Gate.Not [ idx "y%d" i ]
  done;
  (* Stage C: two priority chains (alternating-polarity NAND chain over the
     gated requests, AND/NAND chain over the raw decodes). *)
  g "c0" Gate.Buf [ "w0" ];
  for i = 1 to slices - 1 do
    g (idx "c%d" i) Gate.Nand [ idx "c%d" (i - 1); idx "w%d" i ]
  done;
  g "d0" Gate.Buf [ "x0" ];
  for i = 1 to slices - 1 do
    let kind = if i <= 2 then Gate.And else Gate.Nand in
    g (idx "d%d" i) kind [ idx "d%d" (i - 1); idx "x%d" i ]
  done;
  (* Stage D: parity tree over the gated requests. *)
  let rec xor_tree prefix names k =
    match names with
    | [] -> invalid_arg "xor_tree"
    | [ last ] -> last
    | _ ->
        let rec pair acc j = function
          | u :: v :: rest ->
              let nm = Printf.sprintf "%s_%d_%d" prefix k j in
              g nm Gate.Xor [ u; v ];
              pair (nm :: acc) (j + 1) rest
          | [ u ] -> u :: acc
          | [] -> acc
        in
        xor_tree prefix (List.rev (pair [] 0 names)) (k + 1)
  in
  let parity = xor_tree "t" (List.init slices (idx "y%d")) 0 in
  (* Stage E: complements used by the merge trees. *)
  for i = 0 to slices - 1 do
    g (idx "mb%d" i) Gate.Not [ idx "m%d" i ];
    g (idx "nb%d" i) Gate.Not [ idx "n%d" i ]
  done;
  g "cp_last" Gate.Not [ idx "c%d" (slices - 1) ];
  g "dp_last" Gate.Not [ idx "d%d" (slices - 1) ];
  (* Stage F: NAND merge trees combining slice complements across groups. *)
  let rec nand_tree prefix names k =
    match names with
    | [] -> invalid_arg "nand_tree"
    | [ last ] -> last
    | _ ->
        let rec pair acc j = function
          | u :: v :: rest ->
              let nm = Printf.sprintf "%s_%d_%d" prefix k j in
              g nm Gate.Nand [ u; v ];
              pair (nm :: acc) (j + 1) rest
          | [ u ] -> u :: acc
          | [] -> acc
        in
        nand_tree prefix (List.rev (pair [] 0 names)) (k + 1)
  in
  (* Random-pattern-resistant priority logic, as in the real c432: "all
     requests granted" (wide AND over the gated requests, each 1 with
     probability ~3/8 under random inputs) and "no decode active" (wide NOR
     over the decodes).  These give the stuck-at coverage curve its slow
     tail, covered only by the deterministic ATPG top-up. *)
  let rec and_tree prefix names k =
    match names with
    | [] -> invalid_arg "and_tree"
    | [ last ] -> last
    | _ ->
        let rec group acc j = function
          | [] -> List.rev acc
          | chunk ->
              let take = min 4 (List.length chunk) in
              let rec split i xs =
                if i = 0 then ([], xs)
                else
                  match xs with
                  | [] -> ([], [])
                  | y :: ys ->
                      let a, b = split (i - 1) ys in
                      (y :: a, b)
              in
              let now, rest = split take chunk in
              (match now with
              | [ single ] -> group (single :: acc) j rest
              | _ ->
                  let nm = Printf.sprintf "%s_%d_%d" prefix k j in
                  g nm Gate.And now;
                  group (nm :: acc) (j + 1) rest)
        in
        and_tree prefix (group [] 0 names) (k + 1)
  in
  let all_granted = and_tree "ag" (List.init slices (idx "w%d")) 0 in
  let any_decode =
    let ors = and_tree "ad" (List.init slices (idx "x%d")) 0 in
    (* and_tree with AND gates gives "all decodes high"; its complement NOR
       comes from pairing with the enable chain below. *)
    ors
  in
  let group_a = List.init slices (idx "mb%d") in
  let group_b = List.init slices (idx "nb%d") in
  (* Interleave the two complement families so each tree mixes slices. *)
  let even_of l = List.filteri (fun i _ -> i mod 2 = 0) l in
  let odd_of l = List.filteri (fun i _ -> i mod 2 = 1) l in
  let merge1 = nand_tree "f1" (even_of group_a @ odd_of group_b) 0 in
  let merge2 = nand_tree "f2" (odd_of group_a @ even_of group_b) 0 in
  let merge3 = nand_tree "f3" [ "cp_last"; parity; "w0" ] 0 in
  (* Outputs. *)
  g "po0" Gate.Buf [ idx "c%d" (slices - 1) ];
  g "po1" Gate.Buf [ idx "d%d" (slices - 1) ];
  g "po2" Gate.Buf [ parity ];
  g "po3" Gate.Buf [ merge1 ];
  (* Output gating is chosen so that each observation condition leaves the
     observed cone controllable: all_granted pins every w_i (hence x_i and
     the priority chains), so it must not gate the cones built from them. *)
  g "po4" Gate.Nand [ merge2; all_granted ];
  g "po5" Gate.Nand [ merge3; any_decode ];
  g "po6" Gate.Nand [ "dp_last"; merge1 ];
  for i = 0 to 6 do
    Circuit.Builder.add_output b (idx "po%d" i)
  done;
  Circuit.Builder.finalize b

let carry_lookahead_adder ?title n =
  if n <= 0 || n > 16 then
    invalid_arg "Generator.carry_lookahead_adder: need 0 < n <= 16";
  let title = Option.value title ~default:(Printf.sprintf "cla%d" n) in
  let b = Circuit.Builder.create ~title in
  for i = 0 to n - 1 do
    Circuit.Builder.add_input b (Printf.sprintf "a%d" i);
    Circuit.Builder.add_input b (Printf.sprintf "b%d" i)
  done;
  Circuit.Builder.add_input b "cin";
  for i = 0 to n - 1 do
    Circuit.Builder.add_gate b (Printf.sprintf "g%d" i) Gate.And
      [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i ];
    Circuit.Builder.add_gate b (Printf.sprintf "p%d" i) Gate.Xor
      [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i ]
  done;
  (* Flattened carries: c_{i+1} = g_i + p_i g_{i-1} + ... + p_i..p_0 cin. *)
  let carry_name i = if i = 0 then "cin" else Printf.sprintf "c%d" i in
  for i = 0 to n - 1 do
    let terms = ref [ Printf.sprintf "g%d" i ] in
    for j = 0 to i do
      (* p_i p_{i-1} ... p_j x, where x = g_{j-1} or cin *)
      let factors =
        List.init (i - j + 1) (fun k -> Printf.sprintf "p%d" (i - k))
        @ [ (if j = 0 then "cin" else Printf.sprintf "g%d" (j - 1)) ]
      in
      let nm = Printf.sprintf "t%d_%d" i j in
      (match factors with
      | [ single ] -> ignore single
      | _ -> Circuit.Builder.add_gate b nm Gate.And factors);
      terms := (match factors with [ single ] -> single | _ -> nm) :: !terms
    done;
    Circuit.Builder.add_gate b (carry_name (i + 1)) Gate.Or !terms
  done;
  for i = 0 to n - 1 do
    Circuit.Builder.add_gate b (Printf.sprintf "s%d" i) Gate.Xor
      [ Printf.sprintf "p%d" i; carry_name i ];
    Circuit.Builder.add_output b (Printf.sprintf "s%d" i)
  done;
  Circuit.Builder.add_gate b "cout" Gate.Buf [ carry_name n ];
  Circuit.Builder.add_output b "cout";
  Circuit.Builder.finalize b

let array_multiplier ?title n =
  if n <= 1 || n > 8 then invalid_arg "Generator.array_multiplier: need 1 < n <= 8";
  let title = Option.value title ~default:(Printf.sprintf "mul%d" n) in
  let b = Circuit.Builder.create ~title in
  for i = 0 to n - 1 do
    Circuit.Builder.add_input b (Printf.sprintf "a%d" i);
    Circuit.Builder.add_input b (Printf.sprintf "b%d" i)
  done;
  (* Partial products. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Circuit.Builder.add_gate b (Printf.sprintf "pp%d_%d" i j) Gate.And
        [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" j ]
    done
  done;
  (* Row-by-row ripple accumulation: row j adds pp_*j shifted by j. *)
  let counter = ref 0 in
  let half_adder ~x ~y ~sum ~cout =
    Circuit.Builder.add_gate b sum Gate.Xor [ x; y ];
    Circuit.Builder.add_gate b cout Gate.And [ x; y ]
  in
  let full_adder_named ~x ~y ~z ~sum ~cout =
    incr counter;
    let t1 = Printf.sprintf "fx%d" !counter in
    let t2 = Printf.sprintf "fy%d" !counter in
    let t3 = Printf.sprintf "fz%d" !counter in
    Circuit.Builder.add_gate b t1 Gate.Xor [ x; y ];
    Circuit.Builder.add_gate b sum Gate.Xor [ t1; z ];
    Circuit.Builder.add_gate b t2 Gate.And [ t1; z ];
    Circuit.Builder.add_gate b t3 Gate.And [ x; y ];
    Circuit.Builder.add_gate b cout Gate.Or [ t2; t3 ]
  in
  (* running.(k): name of the current accumulated bit k. *)
  let running = Array.make (2 * n) "" in
  for i = 0 to n - 1 do
    running.(i) <- Printf.sprintf "pp%d_0" i
  done;
  for j = 1 to n - 1 do
    let carry = ref "" in
    for i = 0 to n - 1 do
      let k = i + j in
      let pp = Printf.sprintf "pp%d_%d" i j in
      let acc = running.(k) in
      let sum = Printf.sprintf "s%d_%d" j k in
      let cout = Printf.sprintf "c%d_%d" j k in
      if acc = "" && !carry = "" then running.(k) <- pp
      else if acc = "" then begin
        half_adder ~x:pp ~y:!carry ~sum ~cout;
        running.(k) <- sum;
        carry := cout
      end
      else if !carry = "" then begin
        half_adder ~x:pp ~y:acc ~sum ~cout;
        running.(k) <- sum;
        carry := cout
      end
      else begin
        full_adder_named ~x:pp ~y:acc ~z:!carry ~sum ~cout;
        running.(k) <- sum;
        carry := cout
      end
    done;
    (* Propagate the final carry of this row upward. *)
    let k = ref (n + j) in
    while !carry <> "" && !k < 2 * n do
      if running.(!k) = "" then begin
        running.(!k) <- !carry;
        carry := ""
      end
      else begin
        let sum = Printf.sprintf "s%d_%d" j (100 + !k) in
        let cout = Printf.sprintf "c%d_%d" j (100 + !k) in
        half_adder ~x:running.(!k) ~y:!carry ~sum ~cout;
        running.(!k) <- sum;
        carry := cout;
        incr k
      end
    done
  done;
  for k = 0 to (2 * n) - 1 do
    let out = Printf.sprintf "m%d" k in
    if running.(k) = "" then
      (* Constant-zero high bit of a 1-row multiplier: tying it through an
         AND of complementary signals would create redundant (untestable)
         logic.  The accumulation leaves a column empty only for n = 1,
         which the entry guard excludes — diagnose rather than assert so a
         future guard change cannot silently build a malformed netlist. *)
      invalid_arg
        (Printf.sprintf
           "Generator.array_multiplier: accumulator column %d is empty \
            (only possible for n = 1, which is rejected)"
           k)
    else Circuit.Builder.add_gate b out Gate.Buf [ running.(k) ];
    Circuit.Builder.add_output b out
  done;
  Circuit.Builder.finalize b

(* --- Grammar-driven workload families ---------------------------------- *)

module Family = struct
  type shape = {
    weights : (Gate.kind * int) list;
    input_share : float;
    output_share : float;
    locality : float;
    window_share : float;
    fanout_cap : int;
    pi_fanout_cap : int;
    reuse_bias : float;
  }

  type t = { name : string; doc : string; shape : shape }

  (* Array-backed signal set with O(1) add, remove and uniform draw —
     what keeps 100k-gate generation linear.  Deterministic: the array
     order is a pure function of the add/remove history, and the
     hashtable is used for membership only, never iterated. *)
  module Pool = struct
    type t = {
      mutable arr : string array;
      mutable len : int;
      pos : (string, int) Hashtbl.t;
    }

    let create () = { arr = Array.make 16 ""; len = 0; pos = Hashtbl.create 64 }
    let is_empty p = p.len = 0
    let elements p = Array.to_list (Array.sub p.arr 0 p.len)

    let add p nm =
      if not (Hashtbl.mem p.pos nm) then begin
        if p.len = Array.length p.arr then begin
          let bigger = Array.make (2 * p.len) "" in
          Array.blit p.arr 0 bigger 0 p.len;
          p.arr <- bigger
        end;
        p.arr.(p.len) <- nm;
        Hashtbl.replace p.pos nm p.len;
        p.len <- p.len + 1
      end

    let remove p nm =
      match Hashtbl.find_opt p.pos nm with
      | None -> ()
      | Some i ->
          let last = p.len - 1 in
          let moved = p.arr.(last) in
          p.arr.(i) <- moved;
          Hashtbl.replace p.pos moved i;
          Hashtbl.remove p.pos nm;
          p.len <- last

    (* Uniform over members passing [ok]; a few random probes, then a
       deterministic index-order scan so exhaustion is exact, not lucky. *)
    let draw p rng ~ok =
      let rec probe n =
        if p.len = 0 then None
        else if n > 8 then
          let rec scan i =
            if i >= p.len then None
            else if ok p.arr.(i) then Some p.arr.(i)
            else scan (i + 1)
          in
          scan 0
        else
          let nm = p.arr.(Rng.int rng p.len) in
          if ok nm then Some nm else probe (n + 1)
      in
      probe 0
  end

  (* One production per emitted gate: the grammar draws a kind from
     [weights], an arity from the kind, and fanins by three biased rules —
     a locality window (depth), a used-signal bias (reconvergence), and
     per-signal fanout caps (tree vs. DAG).  Every class below is just a
     point in this parameter space. *)
  let build_shape s ~rng ~title ~gates =
    if gates < 2 then invalid_arg "Generator.Family: need gates >= 2";
    let inputs = max 2 (int_of_float (float_of_int gates *. s.input_share)) in
    let outputs = max 1 (int_of_float (float_of_int gates *. s.output_share)) in
    let builder = Circuit.Builder.create ~title in
    let counter = ref 0 in
    let signals = ref (Array.make 16 "") in  (* oldest first, growable *)
    let n_signals = ref 0 in
    let use_count = Hashtbl.create 64 in
    let is_pi = Hashtbl.create 64 in
    let unused = Pool.create () in           (* zero uses so far *)
    let used_below_cap = Pool.create () in   (* >= 1 use, below its cap *)
    let uses nm = Option.value ~default:0 (Hashtbl.find_opt use_count nm) in
    let cap nm = if Hashtbl.mem is_pi nm then s.pi_fanout_cap else s.fanout_cap in
    let push nm =
      if !n_signals = Array.length !signals then begin
        let bigger = Array.make (2 * !n_signals) "" in
        Array.blit !signals 0 bigger 0 !n_signals;
        signals := bigger
      end;
      !signals.(!n_signals) <- nm;
      incr n_signals;
      Pool.add unused nm
    in
    let bump_use nm =
      let u = uses nm + 1 in
      Hashtbl.replace use_count nm u;
      Pool.remove unused nm;
      if u < cap nm then Pool.add used_below_cap nm
      else Pool.remove used_below_cap nm
    in
    for i = 1 to inputs do
      let nm = Printf.sprintf "pi%d" i in
      Circuit.Builder.add_input builder nm;
      Hashtbl.replace is_pi nm ();
      push nm
    done;
    let pick_fanin chosen =
      let ok nm = (not (List.mem nm chosen)) && uses nm < cap nm in
      let rec draw tries =
        if tries > 64 then Pool.draw unused rng ~ok
        else begin
          let n = !n_signals in
          let idx =
            if Rng.bernoulli rng s.locality then
              (* recent window: depth grows when fanins chain off the frontier *)
              let w = max 2 (int_of_float (float_of_int n *. s.window_share)) in
              n - 1 - Rng.int rng (min w n)
            else Rng.int rng n
          in
          let nm = !signals.(idx) in
          let nm =
            (* reconvergence: sometimes insist on a signal that already has
               fanout, creating a second path from the same stem *)
            if Rng.bernoulli rng s.reuse_bias && uses nm = 0 then
              match Pool.draw used_below_cap rng ~ok with
              | Some u -> u
              | None -> nm
            else nm
          in
          if ok nm then Some nm else draw (tries + 1)
        end
      in
      (* Consume virgin PIs early so none dangle. *)
      if (not (Pool.is_empty unused)) && Rng.bernoulli rng 0.5 then
        match Pool.draw unused rng ~ok with
        | Some nm -> Some nm
        | None -> draw 0
      else draw 0
    in
    let arity_of kind =
      match kind with
      | Gate.Not | Gate.Buf -> 1
      | Gate.Xor | Gate.Xnor -> 2
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
          let r = Rng.float rng 1.0 in
          if r < 0.65 then 2 else if r < 0.9 then 3 else 4
      | Gate.Input -> invalid_arg "Generator.Family: Input in weights"
    in
    let total_weight = List.fold_left (fun a (_, w) -> a + w) 0 s.weights in
    if total_weight <= 0 then invalid_arg "Generator.Family: empty weights";
    let draw_kind () =
      let r = Rng.int rng total_weight in
      let rec scan acc = function
        | [] -> assert false
        | (k, w) :: rest -> if r < acc + w then k else scan (acc + w) rest
      in
      scan 0 s.weights
    in
    for _ = 1 to gates do
      let kind = draw_kind () in
      let arity = min (arity_of kind) !n_signals in
      let rec gather acc k =
        if k = 0 then acc
        else
          match pick_fanin acc with
          | Some nm -> gather (nm :: acc) (k - 1)
          | None -> acc
      in
      let fanin = gather [] arity in
      match fanin with
      | [] -> ()  (* every signal at its cap; skip this production *)
      | _ ->
          let kind = match (kind, fanin) with
            | ((Gate.Xor | Gate.Xnor), [ _ ]) -> Gate.Buf
            | _ -> kind
          in
          let name = fresh_name "g" counter in
          Circuit.Builder.add_gate builder name kind fanin;
          List.iter bump_use fanin;
          push name
    done;
    (* Funnel surplus sinks so exactly [outputs] remain (NAND keeps the
       funnel logic irredundant; single-use so tree classes stay trees).
       A queue keeps the funnel linear: each new funnel gate re-enters at
       the tail and is itself consumed or emitted later. *)
    let funnel () =
      let q = Queue.create () in
      List.iter
        (fun nm -> Queue.add nm q)
        (List.sort compare (Pool.elements unused));
      while Queue.length q > outputs do
        let take = min 4 (Queue.length q - outputs + 1) in
        let chosen = ref [] in
        for _ = 1 to take do chosen := Queue.pop q :: !chosen done;
        let chosen = List.rev !chosen in
        let name = fresh_name "g" counter in
        Circuit.Builder.add_gate builder name Gate.Nand chosen;
        List.iter bump_use chosen;
        push name;
        Queue.add name q
      done;
      while Queue.length q < outputs do
        let name = fresh_name "po_buf" counter in
        let feed = !signals.(Rng.int rng !n_signals) in
        Circuit.Builder.add_gate builder name Gate.Buf [ feed ];
        push name;
        Queue.add name q
      done;
      Queue.iter (Circuit.Builder.add_output builder) q
    in
    funnel ();
    Circuit.Builder.finalize builder

  let nand_mix =
    [ (Gate.Nand, 8); (Gate.Nor, 4); (Gate.And, 4); (Gate.Or, 4);
      (Gate.Not, 3); (Gate.Xor, 2); (Gate.Xnor, 1); (Gate.Buf, 1) ]

  let all =
    [
      { name = "deep-narrow";
        doc = "long chains, few inputs: stresses levelized scheduling depth";
        (* XOR-leaning mix on purpose: a narrow chain of monotone AND/OR
           steps saturates to a logical constant within a few levels,
           producing dead circuits; XOR/NAND steps keep the chain live at
           any depth. *)
        shape = { weights = [ (Gate.Nand, 8); (Gate.Xor, 5); (Gate.Nor, 3);
                              (Gate.Xnor, 2); (Gate.Not, 2); (Gate.And, 1);
                              (Gate.Or, 1) ];
                  input_share = 0.08; output_share = 0.04;
                  locality = 0.92; window_share = 0.12; fanout_cap = 2;
                  pi_fanout_cap = 4; reuse_bias = 0.05 } };
      { name = "xor-heavy";
        doc = "parity-style logic: every fault propagates, detection words \
               saturate";
        shape = { weights = [ (Gate.Xor, 8); (Gate.Xnor, 4); (Gate.Not, 1);
                              (Gate.And, 1); (Gate.Or, 1) ];
                  input_share = 0.25; output_share = 0.08; locality = 0.7;
                  window_share = 0.2; fanout_cap = 2; pi_fanout_cap = 4;
                  reuse_bias = 0.1 } };
      { name = "reconvergent";
        doc = "high-fanout stems reconverging downstream: breeds redundancy \
               and stresses fault collapsing";
        shape = { weights = nand_mix; input_share = 0.15; output_share = 0.06;
                  locality = 0.45; window_share = 0.5; fanout_cap = 5;
                  pi_fanout_cap = 8; reuse_bias = 0.45 } };
      { name = "tree-like";
        doc = "single-use signals: pure trees, the fanout-free ideal";
        shape = { weights = nand_mix; input_share = 0.5; output_share = 0.04;
                  locality = 0.6; window_share = 0.3; fanout_cap = 1;
                  pi_fanout_cap = 1; reuse_bias = 0.0 } };
      { name = "fanout-free-heavy";
        doc = "wide shallow cones with rare shared stems: large fanout-free \
               regions, shallow depth";
        shape = { weights = [ (Gate.And, 6); (Gate.Or, 6); (Gate.Nand, 4);
                              (Gate.Nor, 2); (Gate.Not, 2); (Gate.Xor, 1) ];
                  input_share = 0.45; output_share = 0.1; locality = 0.25;
                  window_share = 0.6; fanout_cap = 2; pi_fanout_cap = 2;
                  reuse_bias = 0.02 } };
      { name = "mixed";
        doc = "ISCAS-like balanced mix: the default fuzzing diet";
        shape = { weights = nand_mix; input_share = 0.2; output_share = 0.08;
                  locality = 0.6; window_share = 0.35; fanout_cap = 3;
                  pi_fanout_cap = 6; reuse_bias = 0.15 } };
      { name = "vlsi-flat";
        doc = "100k-gate-scale workload: shallow local cones with bounded \
               fanout, so generation, levelization and kernel layout stay \
               linear in the gate count";
        (* The tight window (2% of the signal pool) keeps fanin draws in
           cache-friendly locality at any size; the plentiful PIs and POs
           keep the cones shallow and observable, which is what makes a
           100k-gate sweep finish in seconds rather than minutes. *)
        shape = { weights = nand_mix; input_share = 0.12; output_share = 0.06;
                  locality = 0.85; window_share = 0.02; fanout_cap = 3;
                  pi_fanout_cap = 16; reuse_bias = 0.1 } };
    ]

  let names () = List.map (fun f -> f.name) all
  let by_name n = List.find_opt (fun f -> f.name = n) all

  (* Outputs over [n_vectors] random vectors, via a direct topo-order
     walk (the netlist layer cannot depend on Dl_logic). *)
  let sample_outputs (c : Circuit.t) rng n_vectors =
    let vals = Array.make (Array.length c.nodes) false in
    Array.init n_vectors (fun _ ->
        Array.iter (fun id -> vals.(id) <- Rng.bool rng) c.inputs;
        Array.iter
          (fun id ->
            let node = c.nodes.(id) in
            if node.Circuit.kind <> Gate.Input then
              vals.(id) <-
                Gate.eval node.Circuit.kind
                  (Array.map (fun i -> vals.(i)) node.Circuit.fanin))
          c.topo_order;
        Array.map (fun id -> vals.(id)) c.outputs)

  let is_live c rng =
    let samples = sample_outputs c rng 48 in
    Array.exists (fun s -> s <> samples.(0)) samples

  let build f ~seed ~gates =
    let seeds =
      Seeds.scope (Seeds.create seed) (Printf.sprintf "family/%s" f.name)
    in
    let title = Printf.sprintf "%s-%d-s%d" f.name gates seed in
    (* Narrow local windows occasionally let a chain saturate to a logical
       constant, which would make a degenerate workload (nothing to detect,
       nothing to serve).  Retry with a fresh stream until the outputs vary
       over a random-vector probe; the probe streams are seed-derived, so
       the result is still a pure function of (class, seed, gates). *)
    let rec attempt k =
      let rng = Seeds.stream seeds (Printf.sprintf "attempt-%d" k) in
      (* Widen the window a little on every retry: the narrowest shapes
         (deep-narrow at small sizes) can produce constants with high
         probability per draw, so resampling the same shape is not enough. *)
      let shape =
        { f.shape with
          window_share = f.shape.window_share +. (0.06 *. float_of_int k) }
      in
      let c = build_shape shape ~rng ~title ~gates in
      if k >= 9 || is_live c (Seeds.stream seeds (Printf.sprintf "probe-%d" k))
      then c
      else attempt (k + 1)
    in
    attempt 0

  let build_by_name name ~seed ~gates =
    match by_name name with
    | Some f -> build f ~seed ~gates
    | None ->
        invalid_arg
          (Printf.sprintf "Generator.Family: unknown class %S (have: %s)" name
             (String.concat ", " (names ())))
end
