let fits ~max_stack (nd : Circuit.node) =
  let arity = Array.length nd.fanin in
  match nd.kind with
  | Gate.Input | Gate.Buf | Gate.Not -> true
  | Gate.Xor | Gate.Xnor -> arity <= 2
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> arity <= max_stack

let is_cell_mappable ?(max_stack = 4) (c : Circuit.t) =
  Array.for_all (fits ~max_stack) c.nodes

let decompose_for_cells ?(max_stack = 4) (c : Circuit.t) =
  if max_stack < 2 then invalid_arg "Transform.decompose_for_cells: max_stack < 2";
  let b = Circuit.Builder.create ~title:c.title in
  let counter = ref 0 in
  let helper base =
    incr counter;
    Printf.sprintf "%s_dx%d" base !counter
  in
  (* Reduce [names] to at most [width] signals by folding groups of [width]
     through [inner] gates; used for wide AND/OR/XOR trees. *)
  let rec reduce_tree base inner width names =
    if List.length names <= width then names
    else begin
      let rec group acc current = function
        | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
        | x :: rest ->
            if List.length current = width then
              group (List.rev current :: acc) [ x ] rest
            else group acc (x :: current) rest
      in
      let folded =
        List.map
          (fun grp ->
            match grp with
            | [ single ] -> single
            | _ ->
                let nm = helper base in
                Circuit.Builder.add_gate b nm inner grp;
                nm)
          (group [] [] names)
      in
      reduce_tree base inner width folded
    end
  in
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      let name = nd.name in
      let fanin_names = Array.to_list (Array.map (Circuit.name c) nd.fanin) in
      if nd.kind = Gate.Input then Circuit.Builder.add_input b name
      else if fits ~max_stack nd then Circuit.Builder.add_gate b name nd.kind fanin_names
      else begin
        match nd.kind with
        | Gate.And | Gate.Nand ->
            (* Fold with AND trees, keep the final (possibly inverting)
               stage at the original name. *)
            let reduced = reduce_tree name Gate.And max_stack fanin_names in
            Circuit.Builder.add_gate b name nd.kind reduced
        | Gate.Or | Gate.Nor ->
            let reduced = reduce_tree name Gate.Or max_stack fanin_names in
            Circuit.Builder.add_gate b name nd.kind reduced
        | Gate.Xor | Gate.Xnor ->
            let reduced = reduce_tree name Gate.Xor 2 fanin_names in
            Circuit.Builder.add_gate b name nd.kind reduced
        | Gate.Input | Gate.Buf | Gate.Not ->
            (* [fits] accepts these kinds at any arity, so a finalized
               circuit cannot reach here; a node that does is structurally
               corrupt and deserves a diagnosis, not an assert. *)
            invalid_arg
              (Printf.sprintf
                 "Transform.decompose_for_cells: %s node %S (arity %d) \
                  cannot exceed the cell stack limit"
                 (Gate.to_string nd.kind) name
                 (Array.length nd.fanin))
      end)
    c.topo_order;
  Array.iter (fun o -> Circuit.Builder.add_output b (Circuit.name c o)) c.outputs;
  Circuit.Builder.finalize b

(* Rebuild [c] keeping the nodes for which [keep] holds, substituting the
   name of [replace id] for any fanin/output reference to a dropped node.
   Shared by the two shrinker hooks below.  Returns the new circuit plus
   the old-id -> new-id map (computed by name, which both hooks preserve). *)
let rebuild (c : Circuit.t) ~keep ~replace =
  let b = Circuit.Builder.create ~title:c.title in
  (* Resolve a reference through dropped nodes to a kept representative;
     chains terminate because [replace] always points at a lower id that is
     a fanin of the dropped node (the DAG ensures strict decrease). *)
  let rec resolve id = if keep.(id) then id else resolve (replace id) in
  Array.iter
    (fun id -> Circuit.Builder.add_input b (Circuit.name c id))
    c.inputs;
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      if keep.(id) && nd.Circuit.kind <> Gate.Input then
        Circuit.Builder.add_gate b nd.Circuit.name nd.Circuit.kind
          (Array.to_list
             (Array.map (fun src -> Circuit.name c (resolve src)) nd.Circuit.fanin)))
    c.topo_order;
  (* Outputs: substitute dropped nodes, drop duplicates (a substitution can
     alias two output positions onto one surviving node). *)
  let seen_out = Hashtbl.create 8 in
  Array.iter
    (fun o ->
      let o = resolve o in
      if not (Hashtbl.mem seen_out o) then begin
        Hashtbl.add seen_out o ();
        Circuit.Builder.add_output b (Circuit.name c o)
      end)
    c.outputs;
  let c' = Circuit.Builder.finalize b in
  let map =
    Array.init (Circuit.node_count c) (fun id ->
        if keep.(id) then Circuit.find_opt c' (Circuit.name c id) else None)
  in
  (c', map)

let eliminate_node (c : Circuit.t) id =
  if id < 0 || id >= Circuit.node_count c then
    invalid_arg
      (Printf.sprintf "Transform.eliminate_node: node id %d out of range" id);
  let nd = c.nodes.(id) in
  if nd.Circuit.kind = Gate.Input then
    invalid_arg
      (Printf.sprintf
         "Transform.eliminate_node: %S is a primary input" nd.Circuit.name);
  let keep = Array.make (Circuit.node_count c) true in
  keep.(id) <- false;
  rebuild c ~keep ~replace:(fun _ -> nd.Circuit.fanin.(0))

let prune_dead (c : Circuit.t) =
  let n = Circuit.node_count c in
  let keep = Array.make n false in
  (* Backward reachability from the primary outputs. *)
  let rec mark id =
    if not keep.(id) then begin
      keep.(id) <- true;
      Array.iter mark c.nodes.(id).Circuit.fanin
    end
  in
  Array.iter mark c.outputs;
  Array.iter (fun id -> keep.(id) <- true) c.inputs;
  (* No reference to a dropped node can remain (readers of a dropped node
     are themselves dropped), so [replace] is never consulted. *)
  rebuild c ~keep ~replace:(fun id ->
      invalid_arg
        (Printf.sprintf
           "Transform.prune_dead: dangling reference to dead node %d" id))

let stats_delta before after =
  Printf.sprintf "%s: %d -> %d nodes (depth %d -> %d)" before.Circuit.title
    (Circuit.node_count before) (Circuit.node_count after) (Circuit.depth before)
    (Circuit.depth after)
