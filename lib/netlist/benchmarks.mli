(** Built-in benchmark circuits.

    [c17] is the exact ISCAS-85 c17 netlist.  [c432s] is the deterministic
    c432-scale synthetic circuit standing in for the paper's c432 layout
    (same 36-PI/7-PO interface and ISCAS-85 gate-mix profile; see DESIGN.md
    §4 for the substitution rationale). *)

val c17 : unit -> Circuit.t
(** 5 inputs, 2 outputs, 6 NAND gates — the smallest ISCAS-85 circuit. *)

val c432s : unit -> Circuit.t
(** 36 inputs, 7 outputs, ~160 gates with the published c432 gate mix
    (NAND-dominated with NOT, NOR, XOR, AND).  Deterministic. *)

val c432s_small : unit -> Circuit.t
(** A ~40-gate circuit with the same mix, for fast integration tests. *)

val c499s : unit -> Circuit.t
(** The c499-interface 32-bit single-error-correcting circuit (41 inputs,
    32 outputs): Hamming-style syndrome extraction plus per-bit correction,
    reconstructed from the published high-level model.  Built as [.bench]
    text and parsed with {!Bench_format.parse_string}. *)

val c499s_text : unit -> string
(** The [.bench] source of {!c499s}. *)

val c880s : unit -> Circuit.t
(** The c880-interface 8-bit ALU (60 inputs, 26 outputs): operand select,
    ripple-carry add, logic unit, function select, output mask, comparator,
    parity and a priority encoder.  Built as [.bench] text and parsed with
    {!Bench_format.parse_string}. *)

val c880s_text : unit -> string
(** The [.bench] source of {!c880s}. *)

val c1355s : unit -> Circuit.t
(** The c1355-interface 32-bit SEC circuit (41 inputs, 32 outputs):
    functionally identical to {!c499s} — ISCAS-85 c1355 is c499 with every
    XOR expanded — with each XOR emitted as the canonical 4-NAND macro, so
    the netlist is NAND-dominated at roughly c1355 scale. *)

val c1355s_text : unit -> string
(** The [.bench] source of {!c1355s}. *)

val c1908s : unit -> Circuit.t
(** The c1908-interface 16-bit SEC/DED circuit (33 inputs, 25 outputs):
    test-inject bus, 5-bit Hamming syndrome plus overall parity,
    single-error correction and double-error detection, with XORs as
    4-NAND macros. *)

val c1908s_text : unit -> string
(** The [.bench] source of {!c1908s}. *)

val c2670s : unit -> Circuit.t
(** The c2670-interface 12-bit ALU and controller (233 inputs, 140
    outputs): ripple-carry adder, sum/operand comparator, two mask
    arrays, a control decoder keyed into the slice parities, an equality
    bank and flags, with XORs as 4-NAND macros. *)

val c2670s_text : unit -> string
(** The [.bench] source of {!c2670s}. *)

val c3540s : unit -> Circuit.t
(** The c3540-interface 8-bit binary/BCD ALU (50 inputs, 22 outputs):
    two-level operand selection, ripple-carry adder with a BCD
    decimal-adjust stage, logic unit, bidirectional 1-bit shifter,
    masked result bus, comparator, flags, a 5-line priority encoder and
    enable-gated condition outputs. *)

val c3540s_text : unit -> string
(** The [.bench] source of {!c3540s}. *)

val by_name : string -> Circuit.t option
(** Lookup by benchmark name. *)

val all : (string * (unit -> Circuit.t)) list
(** Name/constructor pairs for every built-in benchmark. *)
