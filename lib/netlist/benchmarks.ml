let c17_text =
  "# c17 (ISCAS-85)\n\
   INPUT(n1)\n\
   INPUT(n2)\n\
   INPUT(n3)\n\
   INPUT(n6)\n\
   INPUT(n7)\n\
   OUTPUT(n22)\n\
   OUTPUT(n23)\n\
   n10 = NAND(n1, n3)\n\
   n11 = NAND(n3, n6)\n\
   n16 = NAND(n2, n11)\n\
   n19 = NAND(n11, n7)\n\
   n22 = NAND(n10, n16)\n\
   n23 = NAND(n16, n19)\n"

let c17 () = Bench_format.parse_string ~title:"c17" c17_text

(* c432 is a bus interrupt controller built from 9-bit priority logic
   (36 PI, 7 PO, 160 gates dominated by NAND with a significant XOR
   population); the structured generator mirrors that composition. *)
let c432s () = Generator.priority_controller ~title:"c432s" ~slices:9 ()

let c432s_small () =
  Generator.priority_controller ~title:"c432s_small" ~slices:3 ()

(* The [n] smallest integers >= 3 that are not powers of two: Hamming-style
   codewords whose syndromes never alias a single check-input flip (which
   produces a power-of-two syndrome). *)
let hamming_codewords n =
  let rec collect acc k count =
    if count = n then Array.of_list (List.rev acc)
    else if k land (k - 1) = 0 then collect acc (k + 1) count
    else collect (k :: acc) (k + 1) (count + 1)
  in
  collect [] 3 0

(* Emit [name = XOR(args)], either as the wide gate or — [expand] — as a
   left fold of the canonical 4-NAND XOR macro, which is exactly how the
   ISCAS-85 NAND-level circuits (c1355, c1908) realize the XOR-level
   models they are functionally equivalent to. *)
let emit_xor b ~expand name args =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  if not expand then line "%s = XOR(%s)" name (String.concat ", " args)
  else
    match args with
    | [] | [ _ ] -> invalid_arg "emit_xor: need at least two operands"
    | first :: rest ->
        let n = List.length rest in
        List.iteri
          (fun i operand ->
            let acc = if i = 0 then first else Printf.sprintf "%s_p%d" name i in
            let out =
              if i = n - 1 then name else Printf.sprintf "%s_p%d" name (i + 1)
            in
            line "%s_t%d = NAND(%s, %s)" name i acc operand;
            line "%s_u%d = NAND(%s, %s_t%d)" name i acc name i;
            line "%s_v%d = NAND(%s, %s_t%d)" name i operand name i;
            line "%s = NAND(%s_u%d, %s_v%d)" out name i name i)
          rest

(* c499 is the 32-bit single-error-correcting circuit of the ISCAS-85
   suite (41 PI / 32 PO, ~200 gates).  [c499s] reconstructs it from the
   published high-level model (Hansen, Yalcin & Hayes): a Hamming-style
   syndrome over the 32 data bits — data bit [i] carries the [i]-th
   codeword >= 3 that is not a power of two, so a single check-input flip
   (power-of-two syndrome) never aliases a data correction — followed by
   per-bit match/correct logic.  Interface-exact (input and output names
   and counts); see DESIGN.md §4 for the stand-in rationale.

   c1355 is c499 with every XOR expanded into four NANDs (the two are
   functionally equivalent; ISCAS-85 publishes both); [sec32_text
   ~expand_xor:true] performs the same expansion, so c1355s is
   gate-for-gate NAND-dominated and functionally identical to c499s. *)
let sec32_text ~expand_xor ~title =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# %s" title;
  let codeword = hamming_codewords 32 in
  for i = 0 to 31 do line "INPUT(id%d)" i done;
  for j = 0 to 7 do line "INPUT(ic%d)" j done;
  line "INPUT(r)";
  for i = 0 to 31 do line "OUTPUT(od%d)" i done;
  (* syndrome bit j: parity of the data bits whose codeword has bit j set,
     folded with the matching check input *)
  for j = 0 to 5 do
    let members =
      List.filter (fun i -> codeword.(i) lsr j land 1 = 1)
        (List.init 32 Fun.id)
    in
    let args = List.map (Printf.sprintf "id%d") members @ [ Printf.sprintf "ic%d" j ] in
    emit_xor b ~expand:expand_xor (Printf.sprintf "s%d" j) args
  done;
  (* codewords fit in 6 bits; the two spare syndrome lines carry the check
     inputs gated by the rate input, keeping all 41 inputs observable *)
  emit_xor b ~expand:expand_xor "s6" [ "ic6"; "r" ];
  emit_xor b ~expand:expand_xor "s7" [ "ic7"; "r" ];
  for j = 0 to 7 do line "ns%d = NOT(s%d)" j j done;
  for i = 0 to 31 do
    let args =
      List.init 8 (fun j ->
          if codeword.(i) lsr j land 1 = 1 then Printf.sprintf "s%d" j
          else Printf.sprintf "ns%d" j)
    in
    line "m%d = AND(%s)" i (String.concat ", " args);
    emit_xor b ~expand:expand_xor (Printf.sprintf "od%d" i)
      [ Printf.sprintf "id%d" i; Printf.sprintf "m%d" i ]
  done;
  Buffer.contents b

let c499s_text () =
  sec32_text ~expand_xor:false
    ~title:"c499s: 32-bit SEC circuit, c499-interface reconstruction"

let c499s () = Bench_format.parse_string ~title:"c499s" (c499s_text ())

let c1355s_text () =
  sec32_text ~expand_xor:true
    ~title:
      "c1355s: 32-bit SEC circuit, c1355-interface reconstruction (c499s \
       with XORs as 4-NAND macros)"

let c1355s () = Bench_format.parse_string ~title:"c1355s" (c1355s_text ())

(* c880 is the ISCAS-85 8-bit ALU (60 PI / 26 PO).  [c880s] reconstructs
   the high-level model's datapath — operand selection, ripple-carry
   add, a logic unit, function select, output masking — plus the flag and
   priority sections, with the exact 60-input/26-output interface. *)
let c880s_text () =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let bus prefix n = List.init n (fun i -> prefix ^ string_of_int i) in
  let commas l = String.concat ", " l in
  line "# c880s: 8-bit ALU, c880-interface reconstruction";
  List.iter
    (fun name -> List.iter (fun s -> line "INPUT(%s)" s) (bus name 8))
    [ "a"; "b"; "c"; "d"; "e"; "mask" ];
  for i = 0 to 6 do line "INPUT(pr%d)" i done;
  List.iter (fun s -> line "INPUT(%s)" s) [ "sela"; "selb"; "op0"; "op1"; "cin" ];
  for i = 0 to 7 do line "OUTPUT(y%d)" i done;
  for i = 0 to 7 do line "OUTPUT(z%d)" i done;
  List.iter (fun s -> line "OUTPUT(%s)" s)
    [ "cout"; "parity"; "zero"; "eq"; "gt"; "sign"; "valid"; "prio0"; "prio1"; "prio2" ];
  (* operand selection: x = sela ? c : a, w = selb ? d : b *)
  line "nsela = NOT(sela)";
  line "nselb = NOT(selb)";
  for i = 0 to 7 do
    line "xa%d = AND(a%d, nsela)" i i;
    line "xc%d = AND(c%d, sela)" i i;
    line "x%d = OR(xa%d, xc%d)" i i i;
    line "wb%d = AND(b%d, nselb)" i i;
    line "wd%d = AND(d%d, selb)" i i;
    line "w%d = OR(wb%d, wd%d)" i i i
  done;
  (* ripple-carry adder; xr* doubles as the logic unit's XOR *)
  for i = 0 to 7 do
    let carry = if i = 0 then "cin" else Printf.sprintf "cy%d" i in
    line "xr%d = XOR(x%d, w%d)" i i i;
    line "s%d = XOR(xr%d, %s)" i i carry;
    line "g%d = AND(x%d, w%d)" i i i;
    line "t%d = AND(xr%d, %s)" i i carry;
    line "cy%d = OR(g%d, t%d)" (i + 1) i i
  done;
  line "cout = BUF(cy8)";
  (* logic unit and function select: 00 add, 01 and, 10 or, 11 xor *)
  line "nop0 = NOT(op0)";
  line "nop1 = NOT(op1)";
  for i = 0 to 7 do
    line "la%d = AND(x%d, w%d)" i i i;
    line "lo%d = OR(x%d, w%d)" i i i;
    line "f%dm0 = AND(s%d, nop1, nop0)" i i;
    line "f%dm1 = AND(la%d, nop1, op0)" i i;
    line "f%dm2 = AND(lo%d, op1, nop0)" i i;
    line "f%dm3 = AND(xr%d, op1, op0)" i i;
    line "f%d = OR(f%dm0, f%dm1, f%dm2, f%dm3)" i i i i i
  done;
  line "sign = BUF(f7)";
  (* masked result bus and the e-keyed difference bus *)
  for i = 0 to 7 do
    line "y%d = AND(f%d, mask%d)" i i i;
    line "z%d = XOR(y%d, e%d)" i i i
  done;
  line "parity = XOR(%s)" (commas (bus "z" 8));
  line "zero = NOR(%s)" (commas (bus "y" 8));
  (* unsigned comparison of the ALU result against e *)
  for i = 0 to 7 do
    line "xn%d = XNOR(f%d, e%d)" i i i;
    line "ne%d = NOT(e%d)" i i
  done;
  line "eq = AND(%s)" (commas (bus "xn" 8));
  for i = 0 to 7 do
    let higher = List.init (7 - i) (fun k -> Printf.sprintf "xn%d" (7 - k)) in
    line "gth%d = AND(%s)" i (commas ((Printf.sprintf "f%d" i) :: (Printf.sprintf "ne%d" i) :: higher))
  done;
  line "gt = OR(%s)" (commas (bus "gth" 8));
  (* priority encoder over the request lines *)
  for i = 1 to 6 do line "npr%d = NOT(pr%d)" i i done;
  line "h6 = BUF(pr6)";
  for i = 5 downto 0 do
    let above = List.init (6 - i) (fun k -> Printf.sprintf "npr%d" (6 - k)) in
    line "h%d = AND(%s)" i (commas (Printf.sprintf "pr%d" i :: above))
  done;
  line "valid = OR(%s)" (commas (bus "pr" 7));
  line "prio2 = OR(h6, h5, h4)";
  line "prio1 = OR(h6, h3, h2)";
  line "prio0 = OR(h5, h3, h1)";
  Buffer.contents b

let c880s () = Bench_format.parse_string ~title:"c880s" (c880s_text ())

(* c1908 is the ISCAS-85 16-bit SEC/DED error-correcting unit (33 PI /
   25 PO, NAND-dominated).  [c1908s] reconstructs the high-level model's
   stages with the exact 33-input/25-output interface: an 8-bit
   test-inject bus ahead of the encoder, a 5-bit Hamming syndrome over the
   16 data bits plus an overall-parity line (SEC/DED), single-error
   pointer match/correct, and syndrome/parity/classification outputs.
   XORs are emitted as the 4-NAND macro, matching the NAND-level ISCAS
   original's composition. *)
let c1908s_text () =
  let b = Buffer.create 16384 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let xor = emit_xor b ~expand:true in
  let commas = String.concat ", " in
  line "# c1908s: 16-bit SEC/DED circuit, c1908-interface reconstruction";
  let codeword = hamming_codewords 16 in
  for i = 0 to 15 do line "INPUT(id%d)" i done;
  for j = 0 to 5 do line "INPUT(ic%d)" j done;
  for t = 0 to 7 do line "INPUT(inj%d)" t done;
  List.iter (fun s -> line "INPUT(%s)" s) [ "sel0"; "sel1"; "en" ];
  for i = 0 to 15 do line "OUTPUT(od%d)" i done;
  for j = 0 to 5 do line "OUTPUT(os%d)" j done;
  List.iter (fun s -> line "OUTPUT(%s)" s) [ "err"; "derr"; "quiet" ];
  (* test-inject stage: when sel0 is raised, the inject bus flips the low
     eight data bits before they reach the encoder *)
  for t = 0 to 7 do line "tj%d = AND(inj%d, sel0)" t t done;
  for i = 0 to 15 do
    if i < 8 then
      xor (Printf.sprintf "td%d" i)
        [ Printf.sprintf "id%d" i; Printf.sprintf "tj%d" i ]
    else line "td%d = BUF(id%d)" i i
  done;
  (* 5-bit syndrome + overall parity (the DED bit) *)
  for j = 0 to 4 do
    let members =
      List.filter (fun i -> codeword.(i) lsr j land 1 = 1)
        (List.init 16 Fun.id)
    in
    xor (Printf.sprintf "s%d" j)
      (List.map (Printf.sprintf "td%d") members @ [ Printf.sprintf "ic%d" j ])
  done;
  xor "par" (List.init 16 (Printf.sprintf "td%d") @ [ "ic5" ]);
  for j = 0 to 4 do line "ns%d = NOT(s%d)" j j done;
  (* single-error pointer: match each codeword against the syndrome and
     correct the pointed-at bit (gated by the correction enable) *)
  for i = 0 to 15 do
    let args =
      List.init 5 (fun j ->
          if codeword.(i) lsr j land 1 = 1 then Printf.sprintf "s%d" j
          else Printf.sprintf "ns%d" j)
    in
    line "m%d = AND(%s)" i (commas args);
    line "g%d = AND(m%d, en)" i i;
    xor (Printf.sprintf "od%d" i)
      [ Printf.sprintf "td%d" i; Printf.sprintf "g%d" i ]
  done;
  (* syndrome bus, parity (keyed by sel1) and the SEC/DED classification:
     nonzero syndrome with odd parity is a correctable single error,
     nonzero syndrome with even parity an uncorrectable double error *)
  for j = 0 to 4 do line "os%d = BUF(s%d)" j j done;
  xor "os5" [ "par"; "sel1" ];
  line "anys = OR(s0, s1, s2, s3, s4)";
  line "npar = NOT(par)";
  line "err = AND(anys, par)";
  line "derr = AND(anys, npar)";
  line "quiet = NOR(anys, par)";
  Buffer.contents b

let c1908s () = Bench_format.parse_string ~title:"c1908s" (c1908s_text ())

(* c2670 is the ISCAS-85 12-bit ALU and controller (233 PI / 140 PO,
   ~1.2k gates) — the largest part of its interface is wide datapath
   buses, not the ALU itself.  [c2670s] reconstructs the high-level
   model's sections with the exact 233-input/140-output interface: a
   12-bit ripple-carry adder, an adder/operand comparator, two 64-bit
   mask arrays, a control decoder keyed into the slice parities (so every
   decoder line is observable at a parity output), an equality bank and
   the flag section.  XORs are emitted as the 4-NAND macro. *)
let c2670s_text () =
  let b = Buffer.create 32768 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let xor = emit_xor b ~expand:true in
  let bus prefix n = List.init n (fun i -> prefix ^ string_of_int i) in
  let commas = String.concat ", " in
  line "# c2670s: 12-bit ALU and controller, c2670-interface reconstruction";
  List.iter
    (fun (name, n) -> List.iter (fun s -> line "INPUT(%s)" s) (bus name n))
    [ ("a", 12); ("b", 12) ];
  line "INPUT(cin)";
  List.iter
    (fun (name, n) -> List.iter (fun s -> line "INPUT(%s)" s) (bus name n))
    [ ("e", 12); ("m", 64); ("k", 64); ("p", 32); ("q", 16); ("r", 16);
      ("ctl", 3) ];
  line "INPUT(cmp_en)";
  List.iter
    (fun (name, n) -> List.iter (fun s -> line "OUTPUT(%s)" s) (bus name n))
    [ ("s", 12) ];
  List.iter (fun s -> line "OUTPUT(%s)" s) [ "cout"; "eq"; "gt"; "lt" ];
  List.iter
    (fun (name, n) -> List.iter (fun s -> line "OUTPUT(%s)" s) (bus name n))
    [ ("g", 64); ("h", 32); ("par", 8) ];
  line "OUTPUT(parall)";
  List.iter (fun s -> line "OUTPUT(%s)" s) (bus "qeq" 16);
  List.iter (fun s -> line "OUTPUT(%s)" s) [ "qeq_all"; "valid"; "zero" ];
  (* 12-bit ripple-carry adder: s = a + b + cin *)
  for i = 0 to 11 do
    let carry = if i = 0 then "cin" else Printf.sprintf "cy%d" i in
    xor (Printf.sprintf "axb%d" i)
      [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i ];
    xor (Printf.sprintf "s%d" i) [ Printf.sprintf "axb%d" i; carry ];
    line "ga%d = AND(a%d, b%d)" i i i;
    line "pa%d = AND(axb%d, %s)" i i carry;
    line "cy%d = OR(ga%d, pa%d)" (i + 1) i i
  done;
  line "cout = BUF(cy12)";
  (* unsigned comparison of the sum against the e bus, gated by cmp_en *)
  for i = 0 to 11 do
    line "xn%d = XNOR(s%d, e%d)" i i i;
    line "ne%d = NOT(e%d)" i i
  done;
  line "eqraw = AND(%s)" (commas (bus "xn" 12));
  for i = 0 to 11 do
    let higher = List.init (11 - i) (fun j -> Printf.sprintf "xn%d" (11 - j)) in
    line "gth%d = AND(%s)" i
      (commas (Printf.sprintf "s%d" i :: Printf.sprintf "ne%d" i :: higher))
  done;
  line "gtraw = OR(%s)" (commas (bus "gth" 12));
  line "ltraw = NOR(eqraw, gtraw)";
  line "eq = AND(eqraw, cmp_en)";
  line "gt = AND(gtraw, cmp_en)";
  line "lt = AND(ltraw, cmp_en)";
  (* 64-bit mask array and the p-keyed half-width array riding on it *)
  for i = 0 to 63 do
    xor (Printf.sprintf "g%d" i)
      [ Printf.sprintf "m%d" i; Printf.sprintf "k%d" i ]
  done;
  for i = 0 to 31 do
    xor (Printf.sprintf "h%d" i)
      [ Printf.sprintf "p%d" i; Printf.sprintf "g%d" (2 * i) ]
  done;
  (* 3-to-8 control decoder, keyed into the slice parities below so each
     decoder line reaches a primary output *)
  for j = 0 to 2 do line "nctl%d = NOT(ctl%d)" j j done;
  for t = 0 to 7 do
    let args =
      List.init 3 (fun j ->
          if t lsr j land 1 = 1 then Printf.sprintf "ctl%d" j
          else Printf.sprintf "nctl%d" j)
    in
    line "dec%d = AND(%s)" t (commas args)
  done;
  for j = 0 to 7 do
    xor (Printf.sprintf "par%d" j)
      (List.init 8 (fun i -> Printf.sprintf "g%d" ((8 * j) + i))
      @ [ Printf.sprintf "dec%d" j ])
  done;
  xor "parall" (bus "par" 8);
  (* equality bank and flags *)
  for i = 0 to 15 do line "qeq%d = XNOR(q%d, r%d)" i i i done;
  line "qeq_all = AND(%s)" (commas (bus "qeq" 16));
  line "valid = OR(ctl0, ctl1, ctl2, cmp_en)";
  line "zero = NOR(%s)" (commas (bus "s" 12));
  Buffer.contents b

let c2670s () = Bench_format.parse_string ~title:"c2670s" (c2670s_text ())

(* c3540 is the ISCAS-85 8-bit binary/BCD ALU (50 PI / 22 PO).  [c3540s]
   reconstructs the high-level model's datapath with the exact
   50-input/22-output interface: two-level operand selection, a
   ripple-carry adder with a decimal-adjust stage (nibble > 9 or nibble
   carry adds 6, BCD-gated, with the adjust carry rippling into the high
   nibble), a logic unit, a bidirectional 1-bit shifter, function select,
   output masking, a comparator against the c bus, the flag section, a
   5-line priority encoder and four enable-gated condition outputs. *)
let c3540s_text () =
  let b = Buffer.create 16384 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let bus prefix n = List.init n (fun i -> prefix ^ string_of_int i) in
  let commas = String.concat ", " in
  line "# c3540s: 8-bit binary/BCD ALU, c3540-interface reconstruction";
  List.iter
    (fun name -> List.iter (fun s -> line "INPUT(%s)" s) (bus name 8))
    [ "a"; "b"; "c"; "mask" ];
  List.iter (fun s -> line "INPUT(%s)" s)
    [ "op0"; "op1"; "op2"; "cin"; "sel0"; "sel1"; "shen"; "dir"; "bcd" ];
  for i = 0 to 3 do line "INPUT(en%d)" i done;
  for i = 0 to 4 do line "INPUT(pr%d)" i done;
  for i = 0 to 7 do line "OUTPUT(y%d)" i done;
  List.iter (fun s -> line "OUTPUT(%s)" s)
    [ "cout"; "zero"; "parity"; "sign"; "ovf"; "eq"; "gt"; "valid"; "pri0";
      "pri1"; "q0"; "q1"; "q2"; "q3" ];
  (* operand selection: x = sel0 ? b : a, w = sel1 ? c : b *)
  line "nsel0 = NOT(sel0)";
  line "nsel1 = NOT(sel1)";
  for i = 0 to 7 do
    line "xa%d = AND(a%d, nsel0)" i i;
    line "xb%d = AND(b%d, sel0)" i i;
    line "x%d = OR(xa%d, xb%d)" i i i;
    line "wb%d = AND(b%d, nsel1)" i i;
    line "wc%d = AND(c%d, sel1)" i i;
    line "w%d = OR(wb%d, wc%d)" i i i
  done;
  (* ripple-carry adder; xr* doubles as the logic unit's XOR *)
  for i = 0 to 7 do
    let carry = if i = 0 then "cin" else Printf.sprintf "cy%d" i in
    line "xr%d = XOR(x%d, w%d)" i i i;
    line "s%d = XOR(xr%d, %s)" i i carry;
    line "g%d = AND(x%d, w%d)" i i i;
    line "t%d = AND(xr%d, %s)" i i carry;
    line "cy%d = OR(g%d, t%d)" (i + 1) i i
  done;
  (* decimal adjust, low nibble: +6 when the digit exceeds 9 or the
     nibble carried; the adjust carry [bc4] ripples into the high nibble *)
  line "ors12 = OR(s1, s2)";
  line "dethl = AND(s3, ors12)";
  line "detl = OR(cy4, dethl)";
  line "adjl = AND(detl, bcd)";
  line "d0 = BUF(s0)";
  line "d1 = XOR(s1, adjl)";
  line "bc2 = AND(s1, adjl)";
  line "d2 = XOR(s2, adjl, bc2)";
  line "mj2a = AND(s2, adjl)";
  line "mj2b = AND(s2, bc2)";
  line "mj2c = AND(adjl, bc2)";
  line "bc3 = OR(mj2a, mj2b, mj2c)";
  line "d3 = XOR(s3, bc3)";
  line "bc4 = AND(s3, bc3)";
  (* decimal adjust, high nibble, with the low-nibble adjust carry in *)
  line "ors56 = OR(s5, s6)";
  line "dethh = AND(s7, ors56)";
  line "deth = OR(cy8, dethh)";
  line "adjh = AND(deth, bcd)";
  line "d4 = XOR(s4, bc4)";
  line "bc5 = AND(s4, bc4)";
  line "d5 = XOR(s5, adjh, bc5)";
  line "mj5a = AND(s5, adjh)";
  line "mj5b = AND(s5, bc5)";
  line "mj5c = AND(adjh, bc5)";
  line "bc6 = OR(mj5a, mj5b, mj5c)";
  line "d6 = XOR(s6, adjh, bc6)";
  line "mj6a = AND(s6, adjh)";
  line "mj6b = AND(s6, bc6)";
  line "mj6c = AND(adjh, bc6)";
  line "bc7 = OR(mj6a, mj6b, mj6c)";
  line "d7 = XOR(s7, bc7)";
  line "bc8 = AND(s7, bc7)";
  (* logic unit *)
  for i = 0 to 7 do
    line "la%d = AND(x%d, w%d)" i i i;
    line "lo%d = OR(x%d, w%d)" i i i
  done;
  (* bidirectional 1-bit shifter on x, serial fill from cin *)
  line "ndir = NOT(dir)";
  line "nshen = NOT(shen)";
  for i = 0 to 7 do
    let left = if i = 0 then "cin" else Printf.sprintf "x%d" (i - 1) in
    let right = if i = 7 then "cin" else Printf.sprintf "x%d" (i + 1) in
    line "shl%d = AND(%s, ndir)" i left;
    line "shr%d = AND(%s, dir)" i right;
    line "shx%d = OR(shl%d, shr%d)" i i i;
    line "shs%d = AND(shx%d, shen)" i i;
    line "shp%d = AND(x%d, nshen)" i i;
    line "sh%d = OR(shs%d, shp%d)" i i i
  done;
  (* function select: op2 = 0 picks (op1,op0) in {adjusted sum, AND, OR,
     XOR}; op2 = 1 is the shifter lane *)
  line "nop0 = NOT(op0)";
  line "nop1 = NOT(op1)";
  line "nop2 = NOT(op2)";
  for i = 0 to 7 do
    line "f%dm0 = AND(d%d, nop1, nop0, nop2)" i i;
    line "f%dm1 = AND(la%d, nop1, op0, nop2)" i i;
    line "f%dm2 = AND(lo%d, op1, nop0, nop2)" i i;
    line "f%dm3 = AND(xr%d, op1, op0, nop2)" i i;
    line "f%dm4 = AND(sh%d, op2)" i i;
    line "f%d = OR(f%dm0, f%dm1, f%dm2, f%dm3, f%dm4)" i i i i i i
  done;
  (* masked result bus and the flag section *)
  for i = 0 to 7 do line "y%d = AND(f%d, mask%d)" i i i done;
  line "cout = OR(cy8, adjh, bc8)";
  line "ovfraw = XOR(cy7, cy8)";
  line "ovf = BUF(ovfraw)";
  line "sign = BUF(f7)";
  line "zero = NOR(%s)" (commas (bus "y" 8));
  line "parraw = XOR(%s)" (commas (bus "y" 8));
  line "parity = BUF(parraw)";
  (* unsigned comparison of the ALU result against the c bus *)
  for i = 0 to 7 do
    line "xn%d = XNOR(f%d, c%d)" i i i;
    line "nc%d = NOT(c%d)" i i
  done;
  line "eqraw = AND(%s)" (commas (bus "xn" 8));
  for i = 0 to 7 do
    let higher = List.init (7 - i) (fun k -> Printf.sprintf "xn%d" (7 - k)) in
    line "gth%d = AND(%s)" i
      (commas (Printf.sprintf "f%d" i :: Printf.sprintf "nc%d" i :: higher))
  done;
  line "gtraw = OR(%s)" (commas (bus "gth" 8));
  line "eq = BUF(eqraw)";
  line "gt = BUF(gtraw)";
  (* priority encoder over the request lines; pr4 wins with code 0 *)
  for i = 1 to 4 do line "npr%d = NOT(pr%d)" i i done;
  line "h4 = BUF(pr4)";
  for i = 3 downto 0 do
    let above = List.init (4 - i) (fun k -> Printf.sprintf "npr%d" (4 - k)) in
    line "h%d = AND(%s)" i (commas (Printf.sprintf "pr%d" i :: above))
  done;
  line "valid = OR(%s)" (commas (bus "pr" 5));
  line "pri0 = OR(h1, h3)";
  line "pri1 = OR(h2, h3)";
  (* enable-gated condition outputs *)
  line "q0 = AND(en0, eqraw)";
  line "q1 = AND(en1, gtraw)";
  line "q2 = AND(en2, parraw)";
  line "q3 = AND(en3, ovfraw)";
  Buffer.contents b

let c3540s () = Bench_format.parse_string ~title:"c3540s" (c3540s_text ())

let all =
  [
    ("c17", c17);
    ("c432s", c432s);
    ("c432s_small", c432s_small);
    ("c499s", c499s);
    ("c880s", c880s);
    ("c1355s", c1355s);
    ("c1908s", c1908s);
    ("c2670s", c2670s);
    ("c3540s", c3540s);
    ("add8", fun () -> Generator.ripple_adder 8);
    ("add16", fun () -> Generator.ripple_adder 16);
    ("cmp8", fun () -> Generator.equality_comparator 8);
    ("par16", fun () -> Generator.parity_tree 16);
    ("mux3", fun () -> Generator.multiplexer 3);
    ("dec4", fun () -> Generator.decoder 4);
    ("cla8", fun () -> Generator.carry_lookahead_adder 8);
    ("mul4", fun () -> Generator.array_multiplier 4);
  ]

let by_name name =
  List.assoc_opt name all |> Option.map (fun make -> make ())
