let c17_text =
  "# c17 (ISCAS-85)\n\
   INPUT(n1)\n\
   INPUT(n2)\n\
   INPUT(n3)\n\
   INPUT(n6)\n\
   INPUT(n7)\n\
   OUTPUT(n22)\n\
   OUTPUT(n23)\n\
   n10 = NAND(n1, n3)\n\
   n11 = NAND(n3, n6)\n\
   n16 = NAND(n2, n11)\n\
   n19 = NAND(n11, n7)\n\
   n22 = NAND(n10, n16)\n\
   n23 = NAND(n16, n19)\n"

let c17 () = Bench_format.parse_string ~title:"c17" c17_text

(* c432 is a bus interrupt controller built from 9-bit priority logic
   (36 PI, 7 PO, 160 gates dominated by NAND with a significant XOR
   population); the structured generator mirrors that composition. *)
let c432s () = Generator.priority_controller ~title:"c432s" ~slices:9 ()

let c432s_small () =
  Generator.priority_controller ~title:"c432s_small" ~slices:3 ()

(* c499 is the 32-bit single-error-correcting circuit of the ISCAS-85
   suite (41 PI / 32 PO, ~200 gates).  [c499s] reconstructs it from the
   published high-level model (Hansen, Yalcin & Hayes): a Hamming-style
   syndrome over the 32 data bits — data bit [i] carries the [i]-th
   codeword >= 3 that is not a power of two, so a single check-input flip
   (power-of-two syndrome) never aliases a data correction — followed by
   per-bit match/correct logic.  Interface-exact (input and output names
   and counts); see DESIGN.md §4 for the stand-in rationale. *)
let c499s_text () =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# c499s: 32-bit SEC circuit, c499-interface reconstruction";
  let codeword =
    (* the 32 smallest integers >= 3 that are not powers of two *)
    let rec collect acc n =
      if List.length acc = 32 then List.rev acc
      else if n land (n - 1) = 0 then collect acc (n + 1)
      else collect (n :: acc) (n + 1)
    in
    Array.of_list (collect [] 3)
  in
  for i = 0 to 31 do line "INPUT(id%d)" i done;
  for j = 0 to 7 do line "INPUT(ic%d)" j done;
  line "INPUT(r)";
  for i = 0 to 31 do line "OUTPUT(od%d)" i done;
  (* syndrome bit j: parity of the data bits whose codeword has bit j set,
     folded with the matching check input *)
  for j = 0 to 5 do
    let members =
      List.filter (fun i -> codeword.(i) lsr j land 1 = 1)
        (List.init 32 Fun.id)
    in
    let args = List.map (Printf.sprintf "id%d") members @ [ Printf.sprintf "ic%d" j ] in
    line "s%d = XOR(%s)" j (String.concat ", " args)
  done;
  (* codewords fit in 6 bits; the two spare syndrome lines carry the check
     inputs gated by the rate input, keeping all 41 inputs observable *)
  line "s6 = XOR(ic6, r)";
  line "s7 = XOR(ic7, r)";
  for j = 0 to 7 do line "ns%d = NOT(s%d)" j j done;
  for i = 0 to 31 do
    let args =
      List.init 8 (fun j ->
          if codeword.(i) lsr j land 1 = 1 then Printf.sprintf "s%d" j
          else Printf.sprintf "ns%d" j)
    in
    line "m%d = AND(%s)" i (String.concat ", " args);
    line "od%d = XOR(id%d, m%d)" i i i
  done;
  Buffer.contents b

let c499s () = Bench_format.parse_string ~title:"c499s" (c499s_text ())

(* c880 is the ISCAS-85 8-bit ALU (60 PI / 26 PO).  [c880s] reconstructs
   the high-level model's datapath — operand selection, ripple-carry
   add, a logic unit, function select, output masking — plus the flag and
   priority sections, with the exact 60-input/26-output interface. *)
let c880s_text () =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let bus prefix n = List.init n (fun i -> prefix ^ string_of_int i) in
  let commas l = String.concat ", " l in
  line "# c880s: 8-bit ALU, c880-interface reconstruction";
  List.iter
    (fun name -> List.iter (fun s -> line "INPUT(%s)" s) (bus name 8))
    [ "a"; "b"; "c"; "d"; "e"; "mask" ];
  for i = 0 to 6 do line "INPUT(pr%d)" i done;
  List.iter (fun s -> line "INPUT(%s)" s) [ "sela"; "selb"; "op0"; "op1"; "cin" ];
  for i = 0 to 7 do line "OUTPUT(y%d)" i done;
  for i = 0 to 7 do line "OUTPUT(z%d)" i done;
  List.iter (fun s -> line "OUTPUT(%s)" s)
    [ "cout"; "parity"; "zero"; "eq"; "gt"; "sign"; "valid"; "prio0"; "prio1"; "prio2" ];
  (* operand selection: x = sela ? c : a, w = selb ? d : b *)
  line "nsela = NOT(sela)";
  line "nselb = NOT(selb)";
  for i = 0 to 7 do
    line "xa%d = AND(a%d, nsela)" i i;
    line "xc%d = AND(c%d, sela)" i i;
    line "x%d = OR(xa%d, xc%d)" i i i;
    line "wb%d = AND(b%d, nselb)" i i;
    line "wd%d = AND(d%d, selb)" i i;
    line "w%d = OR(wb%d, wd%d)" i i i
  done;
  (* ripple-carry adder; xr* doubles as the logic unit's XOR *)
  for i = 0 to 7 do
    let carry = if i = 0 then "cin" else Printf.sprintf "cy%d" i in
    line "xr%d = XOR(x%d, w%d)" i i i;
    line "s%d = XOR(xr%d, %s)" i i carry;
    line "g%d = AND(x%d, w%d)" i i i;
    line "t%d = AND(xr%d, %s)" i i carry;
    line "cy%d = OR(g%d, t%d)" (i + 1) i i
  done;
  line "cout = BUF(cy8)";
  (* logic unit and function select: 00 add, 01 and, 10 or, 11 xor *)
  line "nop0 = NOT(op0)";
  line "nop1 = NOT(op1)";
  for i = 0 to 7 do
    line "la%d = AND(x%d, w%d)" i i i;
    line "lo%d = OR(x%d, w%d)" i i i;
    line "f%dm0 = AND(s%d, nop1, nop0)" i i;
    line "f%dm1 = AND(la%d, nop1, op0)" i i;
    line "f%dm2 = AND(lo%d, op1, nop0)" i i;
    line "f%dm3 = AND(xr%d, op1, op0)" i i;
    line "f%d = OR(f%dm0, f%dm1, f%dm2, f%dm3)" i i i i i
  done;
  line "sign = BUF(f7)";
  (* masked result bus and the e-keyed difference bus *)
  for i = 0 to 7 do
    line "y%d = AND(f%d, mask%d)" i i i;
    line "z%d = XOR(y%d, e%d)" i i i
  done;
  line "parity = XOR(%s)" (commas (bus "z" 8));
  line "zero = NOR(%s)" (commas (bus "y" 8));
  (* unsigned comparison of the ALU result against e *)
  for i = 0 to 7 do
    line "xn%d = XNOR(f%d, e%d)" i i i;
    line "ne%d = NOT(e%d)" i i
  done;
  line "eq = AND(%s)" (commas (bus "xn" 8));
  for i = 0 to 7 do
    let higher = List.init (7 - i) (fun k -> Printf.sprintf "xn%d" (7 - k)) in
    line "gth%d = AND(%s)" i (commas ((Printf.sprintf "f%d" i) :: (Printf.sprintf "ne%d" i) :: higher))
  done;
  line "gt = OR(%s)" (commas (bus "gth" 8));
  (* priority encoder over the request lines *)
  for i = 1 to 6 do line "npr%d = NOT(pr%d)" i i done;
  line "h6 = BUF(pr6)";
  for i = 5 downto 0 do
    let above = List.init (6 - i) (fun k -> Printf.sprintf "npr%d" (6 - k)) in
    line "h%d = AND(%s)" i (commas (Printf.sprintf "pr%d" i :: above))
  done;
  line "valid = OR(%s)" (commas (bus "pr" 7));
  line "prio2 = OR(h6, h5, h4)";
  line "prio1 = OR(h6, h3, h2)";
  line "prio0 = OR(h5, h3, h1)";
  Buffer.contents b

let c880s () = Bench_format.parse_string ~title:"c880s" (c880s_text ())

let all =
  [
    ("c17", c17);
    ("c432s", c432s);
    ("c432s_small", c432s_small);
    ("c499s", c499s);
    ("c880s", c880s);
    ("add8", fun () -> Generator.ripple_adder 8);
    ("add16", fun () -> Generator.ripple_adder 16);
    ("cmp8", fun () -> Generator.equality_comparator 8);
    ("par16", fun () -> Generator.parity_tree 16);
    ("mux3", fun () -> Generator.multiplexer 3);
    ("dec4", fun () -> Generator.decoder 4);
    ("cla8", fun () -> Generator.carry_lookahead_adder 8);
    ("mul4", fun () -> Generator.array_multiplier 4);
  ]

let by_name name =
  List.assoc_opt name all |> Option.map (fun make -> make ())
