(** Structural netlist transformations. *)

val decompose_for_cells : ?max_stack:int -> Circuit.t -> Circuit.t
(** Rewrite a circuit so every gate fits a standard-cell library:
    XOR/XNOR become trees of 2-input gates, and AND/OR/NAND/NOR wider than
    [max_stack] (default 4, the longest practical CMOS series stack) are
    split into trees.  Signal names of original nodes are preserved, so
    fault sites and coverage results remain comparable; helper nodes get a
    ["_dx"] suffix. *)

val is_cell_mappable : ?max_stack:int -> Circuit.t -> bool
(** Whether every gate already fits the cell library. *)

(** {2 Shrinker hooks}

    Structural surgery used by {!Dl_check}'s counterexample minimizer: both
    functions rebuild the circuit and return, alongside it, a map from old
    node ids to surviving new ids ([None] for removed nodes), so fault
    sites can be carried across the transformation.  Primary inputs are
    always kept (vector width and PI order are stable), and signal names
    of surviving nodes are preserved. *)

val eliminate_node : Circuit.t -> int -> Circuit.t * int option array
(** [eliminate_node c id] removes the non-input node [id] by wiring every
    reader through its first fanin (and promoting that fanin to a primary
    output wherever [id] was one).  The result computes a different
    function but is always well-formed — exactly what a shrinker needs to
    delete one gate at a time.  @raise Invalid_argument on a primary input
    or out-of-range id. *)

val prune_dead : Circuit.t -> Circuit.t * int option array
(** Remove every node from which no primary output is reachable (primary
    inputs are kept even when dead, preserving the PI interface). *)

val stats_delta : Circuit.t -> Circuit.t -> string
(** Human-readable summary of what a transformation changed. *)
