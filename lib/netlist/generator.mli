(** Parametric combinational circuit generators.

    Two uses: (1) the c432-scale synthetic benchmark standing in for the
    paper's ISCAS-85 c432 layout (see DESIGN.md §4), and (2) structured
    arithmetic circuits for tests and extra workloads. *)

val random :
  ?seed:int ->
  ?title:string ->
  inputs:int ->
  outputs:int ->
  profile:(Gate.kind * int) list ->
  unit ->
  Circuit.t
(** [random ~inputs ~outputs ~profile ()] builds a random DAG with the given
    number of primary inputs and (approximately, see below) the given gate
    mix.  Fanin selection is biased toward recent signals, producing
    realistic logic depth; every primary input is guaranteed to drive logic.
    Surplus sink signals are funneled through extra NAND gates so that the
    circuit ends with exactly [outputs] primary outputs (the reported gate
    count may therefore slightly exceed the profile total).
    @raise Invalid_argument on non-positive [inputs]/[outputs], a negative
    profile count, or [Gate.Input] appearing in the profile. *)

val ripple_adder : ?title:string -> int -> Circuit.t
(** [ripple_adder n]: n-bit ripple-carry adder (2n+1 inputs: a, b, cin;
    n+1 outputs: sum, cout), built from XOR/AND/OR full adders. *)

val equality_comparator : ?title:string -> int -> Circuit.t
(** [equality_comparator n]: outputs 1 iff two n-bit words are equal
    (XNOR reduction tree; [n = 1] degenerates to a single XNOR).
    @raise Invalid_argument for [n <= 0]. *)

val parity_tree : ?title:string -> int -> Circuit.t
(** [parity_tree n]: XOR reduction of n inputs ([n = 1] passes the input
    straight through).  @raise Invalid_argument for [n <= 0]. *)

val multiplexer : ?title:string -> int -> Circuit.t
(** [multiplexer s]: 2^s-to-1 mux with s select lines (AND/OR/NOT). *)

val decoder : ?title:string -> int -> Circuit.t
(** [decoder s]: s-to-2^s one-hot decoder. *)

val priority_controller : ?title:string -> slices:int -> unit -> Circuit.t
(** [priority_controller ~slices ()] builds a structured interrupt/priority
    controller in the spirit of ISCAS-85 c432: [slices] input groups of four
    (enable, two data bits, select), per-slice decode logic (NAND/NOR/NOT/
    XOR), two priority chains, a parity tree and NAND merge trees feeding 7
    outputs.  With [slices = 9] the interface matches c432 (36 inputs,
    7 outputs) at a similar gate count and mix.  Unlike {!random} output,
    the logic is essentially irredundant, so stuck-at coverage can approach
    100% as the paper assumes. *)

val carry_lookahead_adder : ?title:string -> int -> Circuit.t
(** [carry_lookahead_adder n]: n-bit adder with single-level carry
    lookahead (generate/propagate terms and flattened carry equations);
    logically equivalent to {!ripple_adder} but shallow. *)

val array_multiplier : ?title:string -> int -> Circuit.t
(** [array_multiplier n]: n x n combinational array multiplier built from
    partial-product AND terms and ripple-carry rows (2n outputs). *)
