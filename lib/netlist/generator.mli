(** Parametric combinational circuit generators.

    Two uses: (1) the c432-scale synthetic benchmark standing in for the
    paper's ISCAS-85 c432 layout (see DESIGN.md §4), and (2) structured
    arithmetic circuits for tests and extra workloads. *)

val random :
  ?seed:int ->
  ?title:string ->
  inputs:int ->
  outputs:int ->
  profile:(Gate.kind * int) list ->
  unit ->
  Circuit.t
(** [random ~inputs ~outputs ~profile ()] builds a random DAG with the given
    number of primary inputs and (approximately, see below) the given gate
    mix.  Fanin selection is biased toward recent signals, producing
    realistic logic depth; every primary input is guaranteed to drive logic.
    Surplus sink signals are funneled through extra NAND gates so that the
    circuit ends with exactly [outputs] primary outputs (the reported gate
    count may therefore slightly exceed the profile total).
    @raise Invalid_argument on non-positive [inputs]/[outputs], a negative
    profile count, or [Gate.Input] appearing in the profile. *)

val ripple_adder : ?title:string -> int -> Circuit.t
(** [ripple_adder n]: n-bit ripple-carry adder (2n+1 inputs: a, b, cin;
    n+1 outputs: sum, cout), built from XOR/AND/OR full adders. *)

val equality_comparator : ?title:string -> int -> Circuit.t
(** [equality_comparator n]: outputs 1 iff two n-bit words are equal
    (XNOR reduction tree; [n = 1] degenerates to a single XNOR).
    @raise Invalid_argument for [n <= 0]. *)

val parity_tree : ?title:string -> int -> Circuit.t
(** [parity_tree n]: XOR reduction of n inputs ([n = 1] passes the input
    straight through).  @raise Invalid_argument for [n <= 0]. *)

val multiplexer : ?title:string -> int -> Circuit.t
(** [multiplexer s]: 2^s-to-1 mux with s select lines (AND/OR/NOT). *)

val decoder : ?title:string -> int -> Circuit.t
(** [decoder s]: s-to-2^s one-hot decoder. *)

val priority_controller : ?title:string -> slices:int -> unit -> Circuit.t
(** [priority_controller ~slices ()] builds a structured interrupt/priority
    controller in the spirit of ISCAS-85 c432: [slices] input groups of four
    (enable, two data bits, select), per-slice decode logic (NAND/NOR/NOT/
    XOR), two priority chains, a parity tree and NAND merge trees feeding 7
    outputs.  With [slices = 9] the interface matches c432 (36 inputs,
    7 outputs) at a similar gate count and mix.  Unlike {!random} output,
    the logic is essentially irredundant, so stuck-at coverage can approach
    100% as the paper assumes. *)

val carry_lookahead_adder : ?title:string -> int -> Circuit.t
(** [carry_lookahead_adder n]: n-bit adder with single-level carry
    lookahead (generate/propagate terms and flattened carry equations);
    logically equivalent to {!ripple_adder} but shallow. *)

val array_multiplier : ?title:string -> int -> Circuit.t
(** [array_multiplier n]: n x n combinational array multiplier built from
    partial-product AND terms and ripple-carry rows (2n outputs). *)

(** Named workload classes from a small structural grammar.

    Each class is a point in one parameter space (gate-kind weights,
    interface shares, a fanin locality window, fanout caps, a reuse bias);
    one grammar interpreter realizes them all, so a new class is a record,
    not a generator.  Classes are registered by name so the check harness,
    the load generator and the benches can sweep them (["deep-narrow"],
    ["xor-heavy"], ["reconvergent"], ["tree-like"], ["fanout-free-heavy"],
    ["mixed"], ["vlsi-flat"]).  Generation is driven by {!Dl_util.Seeds}
    streams: the circuit is a pure function of [(class, seed, gates)]. *)
module Family : sig
  type shape = {
    weights : (Gate.kind * int) list;  (** gate-kind mix (positive total). *)
    input_share : float;   (** primary inputs per emitted gate. *)
    output_share : float;  (** primary outputs per emitted gate. *)
    locality : float;      (** P(fanin drawn from the recent window). *)
    window_share : float;  (** recent-window size as a share of signals. *)
    fanout_cap : int;      (** max uses of an internal signal (1 = tree). *)
    pi_fanout_cap : int;   (** max uses of a primary input. *)
    reuse_bias : float;    (** P(insist on an already-used stem). *)
  }

  type t = { name : string; doc : string; shape : shape }

  val all : t list
  val names : unit -> string list
  val by_name : string -> t option

  val build : t -> seed:int -> gates:int -> Circuit.t
  (** Deterministic in [(t.name, seed, gates)]; the result has exactly the
      grammar-derived interface and [>= 1] output.
      @raise Invalid_argument for [gates < 2]. *)

  val build_by_name : string -> seed:int -> gates:int -> Circuit.t
  (** @raise Invalid_argument for an unregistered class name. *)
end
