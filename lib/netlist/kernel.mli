(** Flat compiled circuit kernel: CSR adjacency + int opcodes + bigarray
    values, for allocation-free simulation hot loops.

    {!of_circuit} lowers a finalized {!Circuit.t} once into dense int arrays;
    after that a full 64-pattern circuit evaluation ({!run_into}) performs
    zero minor-heap allocation — node values live in an [int64] bigarray
    whose reads, writes, and intermediate logic ops the native compiler keeps
    unboxed, and fanin indices come from a concatenated CSR slice instead of
    per-gate [Array.map]s.

    The record is exposed read-only so the fault simulator can run its own
    event-driven loop (with branch-fault pin overrides) directly against the
    same arrays; see [Fault_sim]. *)

type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A node-value buffer: one 64-pattern word per node id. *)

type t = private {
  circuit : Circuit.t;  (** The lowered circuit (names, node metadata). *)
  n : int;  (** Node count; all per-node arrays have this length. *)
  opcode : int array;  (** [Gate.opcode] per node. *)
  level : int array;  (** Longest path from any PI (shared with circuit). *)
  fanin_off : int array;
      (** CSR offsets, length [n+1]: node [i]'s fanin ids are
          [fanin.(fanin_off.(i)) .. fanin.(fanin_off.(i+1) - 1)], pin order. *)
  fanin : int array;  (** Concatenated fanin ids. *)
  fanout_off : int array;  (** CSR offsets for {!fanout}, length [n+1]. *)
  fanout : int array;  (** Concatenated fanout (reader) ids. *)
  inputs : int array;  (** Primary-input ids, declaration order. *)
  outputs : int array;  (** Primary-output ids, declaration order. *)
  gate_order : int array;  (** Topological order restricted to non-inputs. *)
  n_levels : int;  (** Circuit depth + 1. *)
  level_off : int array;
      (** Histogram CSR, length [n_levels+1]:
          [level_off.(l+1) - level_off.(l)] nodes sit at level [l].  Sizes the
          fault simulator's per-level scheduling stacks. *)
  ffr_stem : int array;
      (** Fanout-free-region partition: [ffr_stem.(i)] is the stem (root) of
          node [i]'s region.  A node is a stem iff its fanout count differs
          from 1 (branching signal, dead node, or a reader using it on two
          pins) or it is a primary output; every interior node reaches its
          stem through a unique chain of single-fanout links, so no signal
          inside a region reconverges before the stem.  [ffr_stem.(s) = s]
          for stems. *)
  ffr_index : int array;
      (** [ffr_index.(i)]: dense index (0 .. [n_ffrs]-1) of node [i]'s stem
          in {!ffr_stems} — the slot fault simulators use to memoize
          per-stem observability words. *)
  ffr_stems : int array;
      (** Stem node ids, ascending; length [n_ffrs]. *)
  n_ffrs : int;  (** Number of fanout-free regions (= number of stems). *)
}

val of_circuit : Circuit.t -> t
(** Lower a circuit.  Validates gate arity once (raising {!Circuit.Malformed}
    on violation) so every downstream evaluation can skip the check. *)

val alloc : int -> words
(** Fresh zero-filled word buffer of the given length. *)

val create_words : t -> words
(** {!alloc} sized to the kernel's node count. *)

val eval_node : t -> words -> int -> unit
(** [eval_node t buf id] evaluates gate [id] from its fanin values in [buf]
    and writes the result to [buf.{id}].  Allocation-free.  Raises
    [Invalid_argument] on a primary input, an out-of-range id, or a buffer
    shorter than [t.n]. *)

val run_into : t -> words -> unit
(** Full-circuit evaluation: one linear pass over {!gate_order}.  Caller
    seeds primary-input words into [buf] first (e.g. [Sim2.load_words]);
    on return [buf.{id}] holds every node's 64-pattern response.
    Allocation-free. *)

(** {2 Wide (256-pattern) path}

    Four words per node: node [i]'s words live at [4i .. 4i+3], word [w]
    carrying patterns [64w .. 64w+63] of the block, so each CSR fanin walk
    amortizes over 256 patterns. *)

val create_words4 : t -> words
(** Zero-filled wide buffer, [4 * n] words. *)

val run_into4 : t -> words -> unit
(** Full-circuit evaluation over a wide buffer (PIs seeded first, e.g.
    [Sim2.load_patterns4]).  Word [w] of every node is bit-identical to a
    {!run_into} pass over patterns [64w .. 64w+63].  Allocation-free. *)
