open Dl_netlist
module Rng = Dl_util.Rng
module Seeds = Dl_util.Seeds
module Stuck_at = Dl_fault.Stuck_at

type t = {
  seed : int;
  circuit : Circuit.t;
  vectors : bool array array;
  faults : Stuck_at.t array;
}

(* Gate-mix template scaled to the requested size; mirrors the mixes the
   existing fuzz suite exercises (NAND-rich with a sprinkle of XOR). *)
let profile_for rng gates =
  let weights =
    [
      (Gate.Nand, 8); (Gate.Nor, 4); (Gate.And, 4); (Gate.Or, 4);
      (Gate.Not, 3); (Gate.Xor, 2); (Gate.Xnor, 1); (Gate.Buf, 1);
    ]
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  let counts =
    List.map
      (fun (kind, w) ->
        let exact = gates * w / total in
        (* +-1 jitter so repeated sizes do not always produce the same
           shape of netlist. *)
        let jitter = if exact > 0 then Rng.int rng 2 else 0 in
        (kind, max 0 (exact + jitter)))
      weights
  in
  List.filter (fun (_, n) -> n > 0) counts

let generate ?family ~seed ~gates ~n_vectors () =
  let seeds = Seeds.scope (Seeds.create seed) "testcase" in
  let circuit =
    match family with
    | Some name ->
        Generator.Family.build_by_name name
          ~seed:(Seeds.seed seeds "circuit")
          ~gates:(max 4 gates)
    | None ->
        let rng = Seeds.stream seeds "shape" in
        let inputs = 4 + Rng.int rng 5 in
        let outputs = 2 + Rng.int rng 3 in
        Generator.random
          ~seed:(Seeds.seed seeds "circuit")
          ~title:(Printf.sprintf "case%d" seed) ~inputs ~outputs
          ~profile:(profile_for rng (max 4 gates))
          ()
  in
  let width = Circuit.input_count circuit in
  let vrng = Seeds.stream seeds "vectors" in
  let vectors =
    Array.init n_vectors (fun _ -> Array.init width (fun _ -> Rng.bool vrng))
  in
  { seed; circuit; vectors; faults = Stuck_at.universe circuit }

let remap_faults (c' : Circuit.t) map faults =
  let arity id = Array.length c'.Circuit.nodes.(id).Circuit.fanin in
  let keep =
    Array.to_list faults
    |> List.filter_map (fun (f : Stuck_at.t) ->
           match f.site with
           | Stuck_at.Stem id -> (
               match map.(id) with
               | Some id' -> Some { f with site = Stuck_at.Stem id' }
               | None -> None)
           | Stuck_at.Branch { gate; pin } -> (
               match map.(gate) with
               | Some gate' when pin < arity gate' ->
                   Some { f with site = Stuck_at.Branch { gate = gate'; pin } }
               | _ -> None))
  in
  (* Surgery can alias two faults onto one site; keep one of each. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun f ->
      if Hashtbl.mem seen f then false
      else begin
        Hashtbl.add seen f ();
        true
      end)
    keep
  |> Array.of_list

let with_circuit t circuit map =
  { t with circuit; faults = remap_faults circuit map t.faults }

let with_vectors t vectors = { t with vectors }
let with_faults t faults = { t with faults }

let pp ppf t =
  Format.fprintf ppf
    "seed %d: %s — %d gates, %d inputs, %d outputs, %d vectors, %d faults"
    t.seed t.circuit.Circuit.title
    (Circuit.gate_count t.circuit)
    (Circuit.input_count t.circuit)
    (Circuit.output_count t.circuit)
    (Array.length t.vectors) (Array.length t.faults)

(* --- Repro files ----------------------------------------------------------

   A failing case is persisted as two files: [<name>.bench] (the shrunk
   circuit, standard ISCAS-85 syntax, loadable by any tool here) and
   [<name>.repro] (seed, vectors as 0/1 rows, fault list in
   [Stuck_at.to_string] syntax).  [load_repro] reverses the pair, so a
   counterexample survives the process that found it. *)

let vector_to_string v =
  String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let vector_of_string line =
  Array.init (String.length line) (fun i ->
      match line.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "repro vector: bad bit %c" c))

let fault_to_string c f = Stuck_at.to_string c f

let fault_of_string (c : Circuit.t) s =
  let site_str, pol_str =
    match String.rindex_opt s ' ' with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> invalid_arg (Printf.sprintf "repro fault: %S" s)
  in
  let polarity =
    match pol_str with
    | "SA0" -> Stuck_at.Sa0
    | "SA1" -> Stuck_at.Sa1
    | _ -> invalid_arg (Printf.sprintf "repro fault polarity: %S" pol_str)
  in
  (* Branch sites print as "<gate>.in<pin>"; generated and ISCAS names never
     contain '.', so the last ".in" split is unambiguous. *)
  let site =
    match String.rindex_opt site_str '.' with
    | Some i
      when i + 3 <= String.length site_str
           && String.sub site_str i 3 = ".in" -> (
        let gate_name = String.sub site_str 0 i in
        let pin_str =
          String.sub site_str (i + 3) (String.length site_str - i - 3)
        in
        match (Circuit.find_opt c gate_name, int_of_string_opt pin_str) with
        | Some gate, Some pin -> Stuck_at.Branch { gate; pin }
        | _ -> invalid_arg (Printf.sprintf "repro fault site: %S" site_str))
    | _ -> (
        match Circuit.find_opt c site_str with
        | Some id -> Stuck_at.Stem id
        | None -> invalid_arg (Printf.sprintf "repro fault site: %S" site_str))
  in
  { Stuck_at.site; polarity }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let save_repro ~dir ~name ~check ~message t =
  mkdir_p dir;
  let bench_path = Filename.concat dir (name ^ ".bench") in
  let repro_path = Filename.concat dir (name ^ ".repro") in
  Bench_format.write_file bench_path t.circuit;
  let oc = open_out repro_path in
  let p fmt = Printf.fprintf oc fmt in
  p "# dlproj check repro v1\n";
  p "# replay with: dlproj check --replay %s\n" repro_path;
  p "check %s\n" check;
  p "message %s\n" (String.map (fun c -> if c = '\n' then ' ' else c) message);
  p "seed %d\n" t.seed;
  p "circuit %s\n" (Filename.basename bench_path);
  p "vectors %d\n" (Array.length t.vectors);
  Array.iter (fun v -> p "%s\n" (vector_to_string v)) t.vectors;
  p "faults %d\n" (Array.length t.faults);
  Array.iter (fun f -> p "%s\n" (fault_to_string t.circuit f)) t.faults;
  close_out oc;
  repro_path

type repro = { case : t; check : string; message : string }

let load_repro path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines =
    List.rev !lines
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')
  in
  let field name = function
    | line :: rest when String.length line > String.length name
                        && String.sub line 0 (String.length name) = name ->
        (String.sub line
           (String.length name + 1)
           (String.length line - String.length name - 1),
         rest)
    | _ -> invalid_arg (Printf.sprintf "repro %s: missing %S field" path name)
  in
  let check, lines = field "check" lines in
  let message, lines = field "message" lines in
  let seed, lines = field "seed" lines in
  let circuit_file, lines = field "circuit" lines in
  let n_vec, lines = field "vectors" lines in
  let n_vec = int_of_string n_vec in
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | x :: rest -> take (n - 1) (x :: acc) rest
    | [] -> invalid_arg (Printf.sprintf "repro %s: truncated" path)
  in
  let vec_lines, lines = take n_vec [] lines in
  let n_faults, lines = field "faults" lines in
  let fault_lines, _ = take (int_of_string n_faults) [] lines in
  let circuit =
    Bench_format.parse_file (Filename.concat (Filename.dirname path) circuit_file)
  in
  let case =
    {
      seed = int_of_string seed;
      circuit;
      vectors = Array.of_list (List.map vector_of_string vec_lines);
      faults = Array.of_list (List.map (fault_of_string circuit) fault_lines);
    }
  in
  { case; check; message }
