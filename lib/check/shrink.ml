(* Greedy counterexample minimization.

   The predicate [fails] is the ground truth: a candidate reduction is
   kept iff the reduced case still fails.  Three reduction moves, cheapest
   first, repeated to a fixpoint (or until the check budget runs out):

   - chunked vector deletion (delta-debugging style: window sizes n/2,
     n/4, ..., 1);
   - chunked fault deletion (same schedule);
   - single-gate elimination via {!Dl_netlist.Transform.eliminate_node} +
     [prune_dead], with the fault set remapped across the surgery.

   Every accepted move strictly shrinks the case, so termination is
   structural; the budget only bounds the number of *rejected*
   attempts. *)

open Dl_netlist

type stats = {
  checks : int;
  rounds : int;
  gates_before : int;
  gates_after : int;
  vectors_before : int;
  vectors_after : int;
  faults_before : int;
  faults_after : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d predicate runs, %d rounds: %d->%d gates, %d->%d vectors, %d->%d \
     faults"
    s.checks s.rounds s.gates_before s.gates_after s.vectors_before
    s.vectors_after s.faults_before s.faults_after

let delete_range arr i len =
  let n = Array.length arr in
  Array.append (Array.sub arr 0 i) (Array.sub arr (i + len) (n - i - len))

let minimize ?(max_checks = 2000) ~fails (case : Testcase.t) =
  let checks = ref 0 in
  let budget_left () = !checks < max_checks in
  let still_fails c =
    budget_left ()
    && begin
         incr checks;
         fails c <> None
       end
  in
  (* Chunked deletion over an array-valued component of the case. *)
  let shrink_component get set case =
    let case = ref case in
    let chunk = ref (max 1 (Array.length (get !case) / 2)) in
    while !chunk >= 1 && budget_left () do
      let i = ref 0 in
      while !i < Array.length (get !case) do
        let arr = get !case in
        let len = min !chunk (Array.length arr - !i) in
        let candidate = set !case (delete_range arr !i len) in
        if len > 0 && still_fails candidate then
          (* deletion accepted: the next chunk slid into position [i] *)
          case := candidate
        else i := !i + len
      done;
      chunk := (if !chunk = 1 then 0 else !chunk / 2)
    done;
    !case
  in
  let shrink_vectors =
    shrink_component
      (fun (c : Testcase.t) -> c.vectors)
      (fun c v -> Testcase.with_vectors c v)
  in
  let shrink_faults =
    shrink_component
      (fun (c : Testcase.t) -> c.faults)
      (fun c f -> Testcase.with_faults c f)
  in
  (* Try to eliminate one gate; [None] if no single elimination keeps the
     case failing. *)
  let try_eliminate (case : Testcase.t) id =
    match
      let c1, m1 = Transform.eliminate_node case.circuit id in
      let c2, m2 = Transform.prune_dead c1 in
      let compose = Array.map (fun o -> Option.bind o (fun i -> m2.(i))) m1 in
      Testcase.with_circuit case c2 compose
    with
    | candidate -> if still_fails candidate then Some candidate else None
    | exception (Invalid_argument _ | Circuit.Malformed _) -> None
  in
  let rec shrink_gates case =
    if not (budget_left ()) then case
    else begin
      let c = case.Testcase.circuit in
      (* Reverse topological order: outputs-first removal exposes whole
         dead cones to [prune_dead] early. *)
      let candidates =
        Array.to_list c.Circuit.topo_order
        |> List.rev
        |> List.filter (fun id -> c.Circuit.nodes.(id).Circuit.kind <> Gate.Input)
      in
      let rec scan = function
        | [] -> case
        | id :: rest -> (
            match try_eliminate case id with
            | Some case' -> shrink_gates case' (* ids moved: rescan *)
            | None -> scan rest)
      in
      scan candidates
    end
  in
  let before = case in
  let rec fixpoint rounds case =
    let case' = shrink_gates (shrink_faults (shrink_vectors case)) in
    let smaller =
      Circuit.gate_count case'.Testcase.circuit
        < Circuit.gate_count case.Testcase.circuit
      || Array.length case'.Testcase.vectors < Array.length case.Testcase.vectors
      || Array.length case'.Testcase.faults < Array.length case.Testcase.faults
    in
    if smaller && budget_left () then fixpoint (rounds + 1) case'
    else (case', rounds + 1)
  in
  let shrunk, rounds = fixpoint 0 case in
  ( shrunk,
    {
      checks = !checks;
      rounds;
      gates_before = Circuit.gate_count before.Testcase.circuit;
      gates_after = Circuit.gate_count shrunk.Testcase.circuit;
      vectors_before = Array.length before.Testcase.vectors;
      vectors_after = Array.length shrunk.Testcase.vectors;
      faults_before = Array.length before.Testcase.faults;
      faults_after = Array.length shrunk.Testcase.faults;
    } )
