(* Metamorphic properties: machine-checkable consequences of the paper's
   closed-form equations (numeric, [Rng]-driven) and of the fault-model
   semantics (over a generated {!Testcase}).  Every function returns
   [None] on success or [Some message] describing the first violation. *)

module Rng = Dl_util.Rng
module Projection = Dl_core.Projection
module Williams_brown = Dl_core.Williams_brown
module Weighted = Dl_core.Weighted
module Yield_model = Dl_core.Yield_model
module Fault_sim = Dl_fault.Fault_sim
module Stuck_at = Dl_fault.Stuck_at
module Coverage = Dl_fault.Coverage

let failf fmt = Printf.ksprintf (fun s -> Some s) fmt

let sweep_trials = 2000

(* eq. 11 at (R = 1, θmax = 1) must reduce exactly to Williams–Brown
   (eq. 1); the paper presents this as the sanity anchor of the model. *)
let wb_reduction ~seed () =
  let rng = Rng.create seed in
  let params = { Projection.r = 1.0; theta_max = 1.0 } in
  let rec loop i =
    if i >= sweep_trials then None
    else
      let yield = Rng.float_in rng 0.05 0.999 in
      let coverage = Rng.float rng 1.0 in
      let dl11 = Projection.defect_level ~yield ~params ~coverage in
      let dl1 = Williams_brown.defect_level ~yield ~coverage in
      if Float.abs (dl11 -. dl1) > 1e-12 then
        failf "eq.11(R=1,θmax=1) = %.17g but WB = %.17g at Y=%.6f T=%.6f"
          dl11 dl1 yield coverage
      else loop (i + 1)
  in
  loop 0

(* eq. 9: Θ(T) stays inside [0, θmax], is monotone nondecreasing in T, and
   pins its endpoints Θ(0) = 0, Θ(1) = θmax. *)
let theta_envelope ~seed () =
  let rng = Rng.create (seed + 1) in
  let rec loop i =
    if i >= sweep_trials then None
    else
      let params =
        { Projection.r = Rng.float_in rng 0.1 8.0;
          theta_max = Rng.float_in rng 0.01 1.0 }
      in
      let t1 = Rng.float rng 1.0 and t2 = Rng.float rng 1.0 in
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      let th_lo = Projection.theta_of_coverage params lo in
      let th_hi = Projection.theta_of_coverage params hi in
      let th0 = Projection.theta_of_coverage params 0.0 in
      let th1 = Projection.theta_of_coverage params 1.0 in
      if th_lo < -.1e-12 || th_hi > params.theta_max +. 1e-12 then
        failf "eq.9 out of [0, θmax]: Θ(%.6f)=%.17g Θ(%.6f)=%.17g θmax=%.6f"
          lo th_lo hi th_hi params.theta_max
      else if th_lo > th_hi +. 1e-12 then
        failf "eq.9 not monotone: Θ(%.6f)=%.17g > Θ(%.6f)=%.17g (R=%.4f)"
          lo th_lo hi th_hi params.r
      else if Float.abs th0 > 1e-12 then
        failf "eq.9 endpoint: Θ(0)=%.17g ≠ 0" th0
      else if Float.abs (th1 -. params.theta_max) > 1e-12 then
        failf "eq.9 endpoint: Θ(1)=%.17g ≠ θmax=%.6f" th1 params.theta_max
      else loop (i + 1)
  in
  loop 0

(* eq. 11: DL(T) is monotone nonincreasing in T, starts at the zero-test
   fallout 1 - Y and floors at the residual defect level (T = 1). *)
let dl_monotone ~seed () =
  let rng = Rng.create (seed + 2) in
  let rec loop i =
    if i >= sweep_trials then None
    else
      let yield = Rng.float_in rng 0.05 0.999 in
      let params =
        { Projection.r = Rng.float_in rng 0.1 8.0;
          theta_max = Rng.float_in rng 0.01 1.0 }
      in
      let t1 = Rng.float rng 1.0 and t2 = Rng.float rng 1.0 in
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      let dl_lo = Projection.defect_level ~yield ~params ~coverage:lo in
      let dl_hi = Projection.defect_level ~yield ~params ~coverage:hi in
      let dl0 = Projection.defect_level ~yield ~params ~coverage:0.0 in
      let dl1 = Projection.defect_level ~yield ~params ~coverage:1.0 in
      let residual =
        Projection.residual_defect_level ~yield ~theta_max:params.theta_max
      in
      if dl_hi > dl_lo +. 1e-12 then
        failf
          "eq.11 not nonincreasing: DL(%.6f)=%.17g < DL(%.6f)=%.17g \
           (Y=%.4f R=%.4f θmax=%.4f)"
          lo dl_lo hi dl_hi yield params.r params.theta_max
      else if Float.abs (dl0 -. (1.0 -. yield)) > 1e-12 then
        failf "eq.11 endpoint: DL(0)=%.17g ≠ 1-Y=%.17g" dl0 (1.0 -. yield)
      else if Float.abs (dl1 -. residual) > 1e-12 then
        failf "eq.11 endpoint: DL(1)=%.17g ≠ residual %.17g" dl1 residual
      else loop (i + 1)
  in
  loop 0

(* eqs. 4-5: the weighted model's yield must agree with the Poisson yield
   model evaluated at λ = Σw (they are the same formula arrived at from
   two directions), [scale_to_yield] must actually hit its target, and the
   weight/probability maps must be inverse to each other. *)
let yield_consistency ~seed () =
  let rng = Rng.create (seed + 3) in
  let rec loop i =
    if i >= sweep_trials then None
    else
      let n = 1 + Rng.int rng 30 in
      let weights = Array.init n (fun _ -> Rng.float_in rng 1e-6 0.5) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let y_weighted = Weighted.yield_of_weights weights in
      let y_poisson = Yield_model.poisson ~area:total ~density:1.0 in
      let target = Rng.float_in rng 0.1 0.95 in
      let scaled, factor = Weighted.scale_to_yield ~weights ~target_yield:target in
      let y_scaled = Weighted.yield_of_weights scaled in
      let w = Rng.float_in rng 1e-6 2.0 in
      let w' = Weighted.weight_of_probability (Weighted.probability_of_weight w) in
      if Float.abs (y_weighted -. y_poisson) > 1e-12 then
        failf "eq.5 vs Poisson: %.17g ≠ %.17g (Σw=%.6f)" y_weighted y_poisson
          total
      else if Float.abs (y_scaled -. target) > 1e-9 then
        failf "scale_to_yield missed: got %.17g want %.6f (factor %.6g)"
          y_scaled target factor
      else if factor <= 0.0 then failf "scale_to_yield factor %.17g <= 0" factor
      else if Float.abs (w -. w') > 1e-9 *. (1.0 +. w) then
        failf "weight/probability roundtrip: %.17g -> %.17g" w w'
      else loop (i + 1)
  in
  loop 0

(* Required-coverage inversions: feeding the solved coverage back into the
   forward model must reproduce the defect-level target (both for eq. 1
   and eq. 11, when the target is reachable). *)
let required_coverage_roundtrip ~seed () =
  let rng = Rng.create (seed + 4) in
  let rec loop i =
    if i >= sweep_trials then None
    else
      let yield = Rng.float_in rng 0.1 0.99 in
      let target_dl = Rng.float_in rng 1e-6 (1.0 -. yield) in
      let t_wb = Williams_brown.required_coverage ~yield ~target_dl in
      let dl_wb = Williams_brown.defect_level ~yield ~coverage:t_wb in
      let params =
        { Projection.r = Rng.float_in rng 0.2 6.0;
          theta_max = Rng.float_in rng 0.5 1.0 }
      in
      (* The inverses are closed-form but route through pow/log, whose
         conditioning near the endpoints costs several digits: judge the
         roundtrip at relative 1e-6. *)
      let tol = 1e-6 *. (1.0 +. target_dl) in
      if Float.abs (dl_wb -. target_dl) > tol then
        failf "WB required_coverage roundtrip: target %.9g gives %.9g"
          target_dl dl_wb
      else
        match Projection.required_coverage ~yield ~params ~target_dl with
        | None ->
            let residual =
              Projection.residual_defect_level ~yield
                ~theta_max:params.theta_max
            in
            if target_dl > residual +. 1e-12 then
              failf
                "eq.11 required_coverage None though target %.9g > residual \
                 %.9g"
                target_dl residual
            else loop (i + 1)
        | Some t ->
            let dl = Projection.defect_level ~yield ~params ~coverage:t in
            if Float.abs (dl -. target_dl) > tol then
              failf "eq.11 required_coverage roundtrip: target %.9g gives %.9g"
                target_dl dl
            else loop (i + 1)
  in
  loop 0

(* --- Case-level metamorphic properties --------------------------------- *)

(* Coverage is monotone in the number of applied vectors (more patterns
   can only detect more), and simulating a prefix of the sequence yields
   exactly the prefix of the detection record: T(k) is a well-defined
   curve, not an artifact of the run length. *)
let coverage_monotone (case : Testcase.t) =
  let { Testcase.circuit; vectors; faults; _ } = case in
  let full = Fault_sim.run ~drop_detected:false circuit ~faults ~vectors in
  let cov = Coverage.make full.first_detection in
  let n = Array.length vectors in
  let prev = ref 0.0 in
  let mono_violation =
    let rec scan k =
      if k > n then None
      else
        let v = Coverage.at cov k in
        if v < !prev -. 1e-12 then
          failf "coverage curve decreases at k=%d: %.9f -> %.9f" k !prev v
        else begin
          prev := v;
          scan (k + 1)
        end
    in
    scan 0
  in
  match mono_violation with
  | Some _ as fail -> fail
  | None ->
      if n = 0 then None
      else begin
        let k = max 1 (n / 2) in
        let prefix =
          Fault_sim.run ~drop_detected:false circuit ~faults
            ~vectors:(Array.sub vectors 0 k)
        in
        let rec scan i =
          if i >= Array.length faults then None
          else
            let expect =
              match full.first_detection.(i) with
              | Some d when d < k -> Some d
              | _ -> None
            in
            if prefix.first_detection.(i) <> expect then
              failf
                "prefix inconsistency for %s: %d-vector run says %s, full \
                 run says %s"
                (Stuck_at.to_string circuit faults.(i))
                k
                (match prefix.first_detection.(i) with
                | Some d -> string_of_int d
                | None -> "undetected")
                (match expect with
                | Some d -> string_of_int d
                | None -> "undetected")
            else scan (i + 1)
        in
        scan 0
      end

(* Equivalence collapsing is sound: every fault in a collapsing class has
   the same first detection as its representative, so the collapsed and
   uncollapsed (--no-collapse) coverage definitions agree class by
   class. *)
let collapse_agreement (case : Testcase.t) =
  let { Testcase.circuit; vectors; _ } = case in
  let universe = Stuck_at.universe circuit in
  let classes = Stuck_at.equivalence_classes circuit universe in
  let r = Fault_sim.run ~drop_detected:false circuit ~faults:universe ~vectors in
  let index = Hashtbl.create (Array.length universe) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) universe;
  let first f = r.first_detection.(Hashtbl.find index f) in
  let rec scan_classes ci =
    if ci >= Array.length classes then None
    else
      let cls = classes.(ci) in
      let d0 = first cls.(0) in
      let rec scan_members mi =
        if mi >= Array.length cls then scan_classes (ci + 1)
        else if first cls.(mi) <> d0 then
          failf
            "collapsing class disagrees: %s first-detected at %s but its \
             representative %s at %s"
            (Stuck_at.to_string circuit cls.(mi))
            (match first cls.(mi) with
            | Some d -> string_of_int d
            | None -> "never")
            (Stuck_at.to_string circuit cls.(0))
            (match d0 with Some d -> string_of_int d | None -> "never")
        else scan_members (mi + 1)
      in
      scan_members 1
  in
  scan_classes 0
