(** The checking harness behind [dlproj check].

    [run] first evaluates the selected sweep checks once, then generates
    {!Testcase}s on a size schedule covering every interesting 64-pattern
    block shape (1 vector, 1..63 tails, exact blocks, multi-block) and
    judges each against every selected case check until the wall-clock
    budget expires.  The first failure is {!Shrink.minimize}d and, when
    [out_dir] is set, persisted as a replayable repro pair
    ({!Testcase.save_repro}). *)

type config = {
  seed : int;
  seconds : float;                (** Case-generation wall-clock budget. *)
  checks : string list option;    (** [None] = the whole registry. *)
  out_dir : string option;        (** Where failing repros are written. *)
  max_shrink_checks : int;
}

val config :
  ?seed:int -> ?seconds:float -> ?checks:string list -> ?out_dir:string ->
  ?max_shrink_checks:int -> unit -> config
(** Defaults: seed 0, 5 s, all checks, no repro directory, 2000 shrink
    evaluations. *)

type failure = {
  check : string;
  message : string;
  case : Testcase.t option;       (** [None] for sweep checks. *)
  shrunk : (Testcase.t * Shrink.stats) option;
  repro_path : string option;
}

type summary = {
  selected : string list;
  sweeps_run : int;
  cases_run : int;
  case_checks_run : int;
  elapsed : float;
  failure : failure option;       (** The harness stops at the first. *)
}

val run : config -> summary
(** @raise Invalid_argument if [checks] names an unknown check. *)

val ok : summary -> bool

val pp_summary : Format.formatter -> summary -> unit
(** The one-screen report. *)

val replay : Testcase.repro -> string * string option
(** Re-judge a saved repro with the check (or [mutant:*] predicate) named
    inside it; returns the check name and its verdict ([None] = the case
    no longer fails). *)

(** {2 Mutation self-test}

    Proof that the harness catches real engine bugs: each known
    single-line mutant of the PPSFP eval loop ({!Mutant.all}) is run
    differentially against {!Dl_fault.Fault_sim.run} until a disagreement
    is found, which is then shrunk; the pristine copy must produce no
    disagreement at all. *)

type self_report = {
  mutant : string;
  caught : bool;
  attempts : int;          (** Cases generated up to (and incl.) the catch. *)
  message : string;
  shrunk_gates : int;
  shrink : Shrink.stats option;
  repro_path : string option;
}

val self_test :
  ?out_dir:string -> ?max_attempts:int -> ?seed:int -> unit ->
  self_report list * bool
(** Returns per-mutant reports (pristine first) and the overall verdict:
    every real mutant caught and shrunk to at most 20 gates, and the
    pristine copy clean. *)

val pp_self_reports : Format.formatter -> self_report list * bool -> unit
