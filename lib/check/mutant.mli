(** Deliberately buggy fault-simulation engines for the mutation self-test:
    a copy of the PPSFP eval loop ({!Dl_fault.Fault_sim.Reference}'s
    algorithm, no-drop specialization) with known single-line mutations
    injected at marked points.

    The self-test runs each mutant differentially against the real engines
    and asserts the harness finds and shrinks a counterexample — proving
    the checking subsystem would catch a real regression of the same
    shape. *)

open Dl_netlist

type mutation =
  | Pristine
      (** No mutation; must be indistinguishable from the real engines
          (guards against drift in the copied loop itself). *)
  | Drop_fault_after_first_block
      (** Fault dropping gone wrong: every fault is retired after the
          first 64-vector block, detected or not. *)
  | Truncate_detection_word
      (** The per-block detection word loses its high 32 bits. *)

val all : (string * mutation) list
(** The real mutations (excluding {!Pristine}), with their display names. *)

val to_string : mutation -> string

val run :
  mutation ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  vectors:bool array array ->
  Dl_fault.Fault_sim.result
(** No-drop PPSFP simulation under the given mutation.  With [Pristine]
    the [first_detection] array is bit-for-bit what
    [Fault_sim.run ~drop_detected:false] produces ([gate_evaluations] is
    not maintained and reads 0). *)
