(** The oracle registry: named differential and metamorphic checks.

    A [Case] check judges one generated {!Testcase} — typically by running
    two or more engines that must agree bit-for-bit.  A [Sweep] check is
    self-contained (a numeric equation sweep, or the cached-vs-uncached
    pipeline differential) and runs once per harness invocation.

    Checks return [None] for pass or [Some message] naming the first
    disagreement precisely enough to debug from. *)

type kind =
  | Case of (Testcase.t -> string option)
  | Sweep of (seed:int -> string option)

type t = { name : string; doc : string; kind : kind }

val all : t list
(** Every registered check, in display order:
    - ["sim2-flat"]: {!Dl_logic.Sim2.run} vs {!Dl_logic.Sim2.run_flat}
      on every node word, including 1..63-vector tail blocks;
    - ["fault-sim"]: {!Dl_fault.Fault_sim.run} vs [Reference.run] vs
      [run_parallel] (several widths, including wider than the fault
      universe), both drop modes, plus [on_detect] event streams and
      evaluation counts;
    - ["event-propagate"]: {!Dl_logic.Event_sim} vs {!Dl_logic.Propagate}
      vs {!Dl_logic.Sim2.run_single} across a vector sequence;
    - ["sim3-binary"]: {!Dl_logic.Sim3.run} equals two-valued simulation
      when no input is X;
    - ["coverage-monotone"], ["collapse-classes"]: case-level metamorphic
      properties (see {!Metamorphic});
    - ["eq11-wb"], ["eq9-theta"], ["eq11-dl"], ["yield-weights"],
      ["required-coverage"]: equation sweeps (see {!Metamorphic});
    - ["experiment-cache"]: cached and uncached
      {!Dl_core.Experiment.run} produce identical results and a warm
      cache hits every stage;
    - ["serve-loopback"]: an answer served by {!Dl_serve.Server} over a
      Unix-socket loopback is bit-identical to a direct
      {!Dl_core.Experiment.run} of the same config, and an identical
      resubmission is coalesced, not re-executed;
    - ["mc-poisson-limit"]: {!Dl_core.Wafer_mc.simulate} with both alphas
      infinite recovers the Poisson closed form
      {!Dl_core.Weighted.defect_level} within the per-wafer sampling
      error, with ordered band quantiles;
    - ["mc-clustered-consistency"]: single-level clustered simulation
      matches {!Dl_core.Clustered.defect_level} against the implied
      negative-binomial yield for several alphas;
    - ["bootstrap-coverage"]: the 90% {!Dl_core.Bootstrap} intervals on
      [(R, θmax)] cover a synthetic eq. 9 ground truth in at least 7 of
      12 independent trials;
    - ["ndet-1detect"]: {!Dl_fault.Fault_sim.run_ndet} at [drop_after:1]
      is bit-identical to the dropping single-detection run on every
      engine, with an equal n = 1 coverage curve;
    - ["ndet-monotone"]: a lower quota is a pure truncation of a higher
      one (counts, k-th detection indices), per-fault detection indices
      strictly increase in k, and T{_n}(k) is pointwise non-increasing
      in n;
    - ["ndet-dl-monotone"]: the {!Dl_core.Dl_n} table over a synthetic
      weighted Θ stand-in has DL@T* non-increasing and k@T*
      non-decreasing in n, every row reaching the shared target. *)

val find : string -> t option
val names : unit -> string list
