(** A randomized differential-testing case: one generated circuit plus the
    vector sequence and stuck-at fault set every engine pair is run on.

    The tuple [(circuit, vectors, faults, seed)] is the unit the harness
    generates, the oracles judge, and the shrinker minimizes. *)

open Dl_netlist

type t = {
  seed : int;                        (** Generation seed (provenance). *)
  circuit : Circuit.t;
  vectors : bool array array;        (** One bool per PI, [inputs] order. *)
  faults : Dl_fault.Stuck_at.t array;
}

val generate :
  ?family:string -> seed:int -> gates:int -> n_vectors:int -> unit -> t
(** Deterministically build a case: a random DAG of about [gates] gates
    (4-8 PIs, 2-4 POs, NAND-rich mix), [n_vectors] uniform vectors, and the
    full uncollapsed stuck-at universe.  All randomness flows from
    {!Dl_util.Seeds} streams rooted at [seed], so circuit shape and vectors
    are replayable in isolation.  [family] selects a named
    {!Dl_netlist.Generator.Family} workload class instead of the default
    NAND-rich mix.
    @raise Invalid_argument for an unregistered [family] name. *)

val remap_faults :
  Circuit.t -> int option array -> Dl_fault.Stuck_at.t array ->
  Dl_fault.Stuck_at.t array
(** Carry fault sites across a structural transformation given the old-id
    to new-id map ({!Dl_netlist.Transform.eliminate_node} /
    [prune_dead]).  Faults whose site vanished are dropped; aliased
    duplicates are collapsed to one. *)

val with_circuit : t -> Circuit.t -> int option array -> t
(** Replace the circuit (after surgery), remapping the fault set through
    the map.  Vectors are kept: PI count and order are stable under the
    shrinker's transformations. *)

val with_vectors : t -> bool array array -> t
val with_faults : t -> Dl_fault.Stuck_at.t array -> t

val pp : Format.formatter -> t -> unit
(** One-line case description (seed, sizes). *)

(** {2 Repro files}

    A failing case persists as [<name>.bench] (the circuit, ISCAS-85
    syntax) plus [<name>.repro] (check name, failure message, seed,
    vectors as 0/1 rows, faults in {!Dl_fault.Stuck_at.to_string} syntax),
    and loads back for replay. *)

val save_repro :
  dir:string -> name:string -> check:string -> message:string -> t -> string
(** Write both files (creating [dir] if needed); returns the [.repro]
    path. *)

type repro = { case : t; check : string; message : string }

val load_repro : string -> repro
(** Parse a [.repro] file (and the [.bench] beside it).
    @raise Invalid_argument or [Sys_error] on malformed input. *)
