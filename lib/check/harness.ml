(* The checking harness: drives the oracle registry over generated cases
   under a wall-clock budget, shrinks the first failure, and persists a
   replayable repro.  Also hosts the mutation self-test that proves the
   harness actually catches (and minimizes) a planted engine bug. *)

open Dl_netlist
module Fault_sim = Dl_fault.Fault_sim
module Seeds = Dl_util.Seeds
module Stuck_at = Dl_fault.Stuck_at

type config = {
  seed : int;
  seconds : float;
  checks : string list option;
  out_dir : string option;
  max_shrink_checks : int;
}

let config ?(seed = 0) ?(seconds = 5.0) ?checks ?out_dir
    ?(max_shrink_checks = 2000) () =
  { seed; seconds; checks; out_dir; max_shrink_checks }

type failure = {
  check : string;
  message : string;
  case : Testcase.t option;
  shrunk : (Testcase.t * Shrink.stats) option;
  repro_path : string option;
}

type summary = {
  selected : string list;
  sweeps_run : int;
  cases_run : int;
  case_checks_run : int;
  elapsed : float;
  failure : failure option;
}

let ok s = s.failure = None

(* Size schedule: gate counts and vector counts stride with coprime
   periods, so successive cases cover all combinations — including every
   interesting block shape (single vector, 1..63 tails, exact block,
   block+1, multi-block). *)
let gate_sizes = [| 10; 20; 35; 60 |]
let vector_sizes = [| 1; 7; 63; 64; 65; 96; 130 |]

(* Even iterations run the default NAND-rich mix; odd ones cycle through
   the registered workload classes, so every oracle sees every structural
   family (deep chains, XOR trees, heavy reconvergence, ...).  Per-case
   seeds come from a [Seeds] stream keyed by the iteration index, so any
   case replays in isolation from [(cfg.seed, i)]. *)
let family_names = lazy (Array.of_list (Generator.Family.names ()))

let case_of_iteration ~seed i =
  let seeds = Seeds.scope (Seeds.create seed) "harness" in
  let fams = Lazy.force family_names in
  let family =
    if i mod 2 = 0 then None else Some fams.(i / 2 mod Array.length fams)
  in
  Testcase.generate ?family
    ~seed:(Seeds.seed seeds (Printf.sprintf "case-%d" i))
    ~gates:gate_sizes.(i mod Array.length gate_sizes)
    ~n_vectors:vector_sizes.(i mod Array.length vector_sizes)
    ()

let resolve_checks = function
  | None -> Oracle.all
  | Some names ->
      List.map
        (fun n ->
          match Oracle.find n with
          | Some o -> o
          | None ->
              invalid_arg
                (Printf.sprintf "unknown check %S (known: %s)" n
                   (String.concat ", " (Oracle.names ()))))
        names

let shrink_and_save ~cfg ~check ~message (case : Testcase.t)
    (judge : Testcase.t -> string option) =
  let shrunk, stats =
    Shrink.minimize ~max_checks:cfg.max_shrink_checks ~fails:judge case
  in
  let repro_path =
    Option.map
      (fun dir ->
        Testcase.save_repro ~dir
          ~name:(Printf.sprintf "%s-seed%d" check shrunk.Testcase.seed)
          ~check ~message shrunk)
      cfg.out_dir
  in
  { check; message; case = Some case; shrunk = Some (shrunk, stats);
    repro_path }

let run cfg =
  let t0 = Unix.gettimeofday () in
  let selected = resolve_checks cfg.checks in
  let sweeps, cases =
    List.partition (fun (o : Oracle.t) ->
        match o.kind with Oracle.Sweep _ -> true | Oracle.Case _ -> false)
      selected
  in
  let sweeps_run = ref 0 in
  let cases_run = ref 0 in
  let case_checks_run = ref 0 in
  let finish failure =
    {
      selected = List.map (fun (o : Oracle.t) -> o.Oracle.name) selected;
      sweeps_run = !sweeps_run;
      cases_run = !cases_run;
      case_checks_run = !case_checks_run;
      elapsed = Unix.gettimeofday () -. t0;
      failure;
    }
  in
  let rec run_sweeps = function
    | [] -> None
    | (o : Oracle.t) :: rest -> (
        match o.kind with
        | Oracle.Case _ -> run_sweeps rest
        | Oracle.Sweep f -> (
            incr sweeps_run;
            match f ~seed:cfg.seed with
            | None -> run_sweeps rest
            | Some message ->
                Some
                  { check = o.name; message; case = None; shrunk = None;
                    repro_path = None }))
  in
  match run_sweeps sweeps with
  | Some f -> finish (Some f)
  | None ->
      if cases = [] then finish None
      else begin
        let deadline = t0 +. cfg.seconds in
        let rec iterate i =
          (* always complete at least one full case, however small the
             budget *)
          if i > 0 && Unix.gettimeofday () >= deadline then finish None
          else begin
            let case = case_of_iteration ~seed:cfg.seed i in
            let rec judge_all = function
              | [] ->
                  incr cases_run;
                  iterate (i + 1)
              | (o : Oracle.t) :: rest -> (
                  match o.kind with
                  | Oracle.Sweep _ -> judge_all rest
                  | Oracle.Case f -> (
                      incr case_checks_run;
                      match f case with
                      | None -> judge_all rest
                      | Some message ->
                          finish
                            (Some
                               (shrink_and_save ~cfg ~check:o.name ~message
                                  case f))))
            in
            judge_all cases
          end
        in
        iterate 0
      end

let pp_summary ppf s =
  Format.fprintf ppf "dl_check: %d checks (%s)@\n" (List.length s.selected)
    (String.concat ", " s.selected);
  Format.fprintf ppf
    "  %d sweeps, %d cases (%d case-checks) in %.2f s@\n" s.sweeps_run
    s.cases_run s.case_checks_run s.elapsed;
  match s.failure with
  | None -> Format.fprintf ppf "  all checks passed@."
  | Some f ->
      Format.fprintf ppf "  FAILED %s: %s@\n" f.check f.message;
      Option.iter
        (fun c -> Format.fprintf ppf "  original: %a@\n" Testcase.pp c)
        f.case;
      Option.iter
        (fun (c, stats) ->
          Format.fprintf ppf "  shrunk:   %a@\n  shrink:   %a@\n" Testcase.pp
            c Shrink.pp_stats stats)
        f.shrunk;
      (match f.repro_path with
      | Some p -> Format.fprintf ppf "  repro:    %s@." p
      | None -> Format.fprintf ppf "  repro:    (no --out directory)@.")

(* --- replay -------------------------------------------------------------- *)

(* The mutant is judged against two independently-implemented correct
   engines — the flat kernel and the wide FFR-inference engine — so the
   self-test also proves each can serve as a bug detector (and, for
   [Pristine], that the two agree with the copied loop and each other). *)
let mutant_disagreement m (case : Testcase.t) =
  let got = Mutant.run m case.circuit ~faults:case.faults ~vectors:case.vectors in
  let n = Array.length case.faults in
  let scan_against engine_name (want : Fault_sim.result) =
    let rec scan i =
      if i >= n then None
      else if got.Fault_sim.first_detection.(i)
              <> want.Fault_sim.first_detection.(i)
      then
        Some
          (Printf.sprintf "mutant %s: fault %s first-detected at %s, %s \
                           says %s"
             (Mutant.to_string m)
             (Stuck_at.to_string case.circuit case.faults.(i))
             (match got.Fault_sim.first_detection.(i) with
             | Some d -> string_of_int d
             | None -> "never")
             engine_name
             (match want.Fault_sim.first_detection.(i) with
             | Some d -> string_of_int d
             | None -> "never"))
      else scan (i + 1)
    in
    scan 0
  in
  match
    scan_against "flat engine"
      (Fault_sim.run ~drop_detected:false case.circuit ~faults:case.faults
         ~vectors:case.vectors)
  with
  | Some _ as d -> d
  | None ->
      scan_against "wide engine"
        (Fault_sim.run_with ~engine:Fault_sim.Wide ~drop_detected:false
           case.circuit ~faults:case.faults ~vectors:case.vectors)

let mutant_check_prefix = "mutant:"

let replay (r : Testcase.repro) =
  let name = r.Testcase.check in
  if String.length name > String.length mutant_check_prefix
     && String.sub name 0 (String.length mutant_check_prefix)
        = mutant_check_prefix
  then begin
    let mname =
      String.sub name
        (String.length mutant_check_prefix)
        (String.length name - String.length mutant_check_prefix)
    in
    match List.assoc_opt mname Mutant.all with
    | Some m -> (name, mutant_disagreement m r.Testcase.case)
    | None -> invalid_arg (Printf.sprintf "unknown mutant %S" mname)
  end
  else
    match Oracle.find name with
    | Some { kind = Oracle.Case f; _ } -> (name, f r.Testcase.case)
    | Some { kind = Oracle.Sweep f; _ } ->
        (name, f ~seed:r.Testcase.case.Testcase.seed)
    | None -> invalid_arg (Printf.sprintf "unknown check %S" name)

(* --- mutation self-test --------------------------------------------------- *)

type self_report = {
  mutant : string;
  caught : bool;
  attempts : int;
  message : string;
  shrunk_gates : int;
  shrink : Shrink.stats option;
  repro_path : string option;
}

let self_test ?out_dir ?(max_attempts = 48) ?(seed = 0) () =
  (* >64 vectors so a whole-block mutation is observable; mid-size
     circuits so late and high-bit first detections exist. *)
  let case_for attempt =
    Testcase.generate
      ~seed:((seed * 7919) + (attempt * 131) + 17)
      ~gates:(30 + (17 * attempt mod 31))
      ~n_vectors:130 ()
  in
  (* The pristine copy must agree with the real engine: otherwise a caught
     "mutant" might only witness drift in the copied loop. *)
  let pristine_report =
    let rec scan attempt =
      if attempt >= 4 then None
      else
        match mutant_disagreement Mutant.Pristine (case_for attempt) with
        | Some m -> Some m
        | None -> scan (attempt + 1)
    in
    match scan 0 with
    | Some m ->
        { mutant = "pristine"; caught = true; attempts = 4; message = m;
          shrunk_gates = 0; shrink = None; repro_path = None }
    | None ->
        { mutant = "pristine"; caught = false; attempts = 4;
          message = "copied eval loop matches the real engine";
          shrunk_gates = 0; shrink = None; repro_path = None }
  in
  let test_mutant (mname, m) =
    let judge = mutant_disagreement m in
    let rec hunt attempt =
      if attempt >= max_attempts then
        { mutant = mname; caught = false; attempts = attempt;
          message = "no disagreement found"; shrunk_gates = 0; shrink = None;
          repro_path = None }
      else begin
        let case = case_for attempt in
        match judge case with
        | None -> hunt (attempt + 1)
        | Some message ->
            let shrunk, stats = Shrink.minimize ~fails:judge case in
            let repro_path =
              Option.map
                (fun dir ->
                  Testcase.save_repro ~dir
                    ~name:(Printf.sprintf "mutant-%s-seed%d" mname
                             shrunk.Testcase.seed)
                    ~check:(mutant_check_prefix ^ mname)
                    ~message shrunk)
                out_dir
            in
            { mutant = mname; caught = true; attempts = attempt + 1; message;
              shrunk_gates = Circuit.gate_count shrunk.Testcase.circuit;
              shrink = Some stats; repro_path }
      end
    in
    hunt 0
  in
  let reports = pristine_report :: List.map test_mutant Mutant.all in
  let ok =
    List.for_all
      (fun r ->
        if r.mutant = "pristine" then not r.caught
        else r.caught && r.shrunk_gates <= 20)
      reports
  in
  (reports, ok)

let pp_self_report ppf (r : self_report) =
  if r.mutant = "pristine" then
    Format.fprintf ppf "  %-26s %s@\n" r.mutant
      (if r.caught then "DRIFT: " ^ r.message else "ok (no false positive)")
  else if not r.caught then
    Format.fprintf ppf "  %-26s NOT CAUGHT after %d cases@\n" r.mutant
      r.attempts
  else begin
    Format.fprintf ppf "  %-26s caught (case %d), shrunk to %d gates%s@\n"
      r.mutant r.attempts r.shrunk_gates
      (match r.repro_path with
      | Some p -> Printf.sprintf ", repro %s" p
      | None -> "");
    Option.iter
      (fun s -> Format.fprintf ppf "  %-26s %a@\n" "" Shrink.pp_stats s)
      r.shrink
  end

let pp_self_reports ppf (reports, ok) =
  Format.fprintf ppf "mutation self-test:@\n";
  List.iter (pp_self_report ppf) reports;
  Format.fprintf ppf "  %s@."
    (if ok then "self-test passed: planted bugs are caught and shrunk"
     else "SELF-TEST FAILED")
