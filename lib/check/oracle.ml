(* The oracle registry: every engine pair (or higher-level invariant) the
   harness knows how to cross-check.  Case checks run once per generated
   {!Testcase}; sweep checks are self-contained (numeric sweeps, or the
   cached-pipeline differential) and run once per harness invocation. *)

open Dl_netlist
module Sim2 = Dl_logic.Sim2
module Sim3 = Dl_logic.Sim3
module Ternary = Dl_logic.Ternary
module Event_sim = Dl_logic.Event_sim
module Propagate = Dl_logic.Propagate
module Fault_sim = Dl_fault.Fault_sim
module Experiment = Dl_core.Experiment
module Stage = Dl_store.Stage

type kind =
  | Case of (Testcase.t -> string option)
  | Sweep of (seed:int -> string option)

type t = { name : string; doc : string; kind : kind }

let failf fmt = Printf.ksprintf (fun s -> Some s) fmt

(* --- sim2-flat: reference word simulator vs flat CSR kernel ------------- *)

let sim2_flat (case : Testcase.t) =
  let c = case.Testcase.circuit in
  let n = Array.length case.vectors in
  if n = 0 then None
  else begin
    let k = Kernel.of_circuit c in
    let buf = Kernel.create_words k in
    let n_blocks = (n + 63) / 64 in
    let rec block b =
      if b >= n_blocks then None
      else begin
        let base = b * 64 in
        let count = min 64 (n - base) in
        let words =
          Sim2.words_of_patterns c (Array.sub case.vectors base count)
        in
        let reference = Sim2.run c words in
        Sim2.load_patterns k buf case.vectors ~base ~count;
        Sim2.run_flat k buf;
        let mask =
          if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
        in
        let rec node id =
          if id >= Circuit.node_count c then block (b + 1)
          else
            let r = Int64.logand reference.(id) mask in
            let f = Int64.logand buf.{id} mask in
            if r <> f then
              failf
                "Sim2.run vs run_flat: node %s block %d (vectors %d..%d): \
                 %Lx vs %Lx"
                (Circuit.name c id) b base
                (base + count - 1)
                r f
            else node (id + 1)
        in
        node 0
      end
    in
    block 0
  end

(* --- fault-sim: kernel vs reference vs parallel, both drop modes -------- *)

let fault_sim_agreement (case : Testcase.t) =
  let { Testcase.circuit = c; vectors; faults; _ } = case in
  let run_engine f =
    let events = ref [] in
    let on_detect ~fault_index ~vector_index =
      events := (fault_index, vector_index) :: !events
    in
    let r = f ~on_detect in
    (r, List.rev !events)
  in
  let engines drop =
    [
      ( "kernel",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.run ~drop_detected:drop ~on_detect c ~faults ~vectors)
      );
      ( "reference",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.Reference.run ~drop_detected:drop ~on_detect c ~faults
                ~vectors) );
      ( "parallel-2",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.run_parallel ~domains:2 ~drop_detected:drop ~on_detect
                c ~faults ~vectors) );
      ( "reference-parallel-3",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.Reference.run_parallel ~domains:3 ~drop_detected:drop
                ~on_detect c ~faults ~vectors) );
    ]
  in
  let check_mode drop =
    match engines drop with
    | [] -> None
    | (base_name, base_run) :: rest ->
        let base_r, base_ev = base_run () in
        let rec compare_engines = function
          | [] -> None
          | (name, run) :: rest -> (
              let r, ev = run () in
              let mismatch =
                Array.to_list
                  (Array.mapi
                     (fun i d ->
                       if d <> base_r.Fault_sim.first_detection.(i) then Some i
                       else None)
                     r.Fault_sim.first_detection)
                |> List.find_opt Option.is_some |> Option.join
              in
              match mismatch with
              | Some i ->
                  failf
                    "%s vs %s (drop=%b): fault %s first-detected at %s vs %s"
                    base_name name drop
                    (Dl_fault.Stuck_at.to_string c faults.(i))
                    (match base_r.Fault_sim.first_detection.(i) with
                    | Some d -> string_of_int d
                    | None -> "never")
                    (match r.Fault_sim.first_detection.(i) with
                    | Some d -> string_of_int d
                    | None -> "never")
              | None ->
                  if r.Fault_sim.gate_evaluations
                     <> base_r.Fault_sim.gate_evaluations
                  then
                    failf "%s vs %s (drop=%b): gate_evaluations %d vs %d"
                      base_name name drop base_r.Fault_sim.gate_evaluations
                      r.Fault_sim.gate_evaluations
                  else if ev <> base_ev then
                    failf
                      "%s vs %s (drop=%b): on_detect event streams differ \
                       (%d vs %d events)"
                      base_name name drop (List.length base_ev)
                      (List.length ev)
                  else compare_engines rest)
        in
        compare_engines rest
  in
  (* A pool wider than the fault universe (clamped at spawn time): run
     a small fault subset against a deliberately oversized request. *)
  let check_wide_pool () =
    if Array.length faults = 0 then None
    else begin
      let sub = Array.sub faults 0 (min 3 (Array.length faults)) in
      let serial = Fault_sim.run ~drop_detected:false c ~faults:sub ~vectors in
      let wide =
        Fault_sim.run_parallel
          ~domains:(Array.length sub + 5)
          ~drop_detected:false c ~faults:sub ~vectors
      in
      if wide.Fault_sim.first_detection <> serial.Fault_sim.first_detection
      then
        failf
          "run_parallel with pool wider than the %d-fault subset disagrees \
           with run"
          (Array.length sub)
      else None
    end
  in
  match check_mode true with
  | Some _ as f -> f
  | None -> (
      match check_mode false with
      | Some _ as f -> f
      | None -> check_wide_pool ())

(* --- ppsfp-{event,pruned,wide}: PR 7 engine variants vs Reference ------- *)

(* Pin one engine variant bit-identical to [Fault_sim.Reference]: first
   detections and [on_detect] event streams, both drop modes, serial and
   parallel (2 and 3 domains).  [Event] additionally pins
   [gate_evaluations]: its scheduling decisions must match the reference
   exactly, not just its results.  The inference engines ([Pruned],
   [Wide]) are exempt — not evaluating gates is their entire point. *)
let ppsfp_variant engine (case : Testcase.t) =
  let { Testcase.circuit = c; vectors; faults; _ } = case in
  let vname = Fault_sim.engine_to_string engine in
  let pin_evals = engine = Fault_sim.Event || engine = Fault_sim.Flat in
  let collect f =
    let events = ref [] in
    let on_detect ~fault_index ~vector_index =
      events := (fault_index, vector_index) :: !events
    in
    let r = f ~on_detect in
    (r, List.rev !events)
  in
  let check_mode drop =
    let ref_r, ref_ev =
      collect (fun ~on_detect ->
          Fault_sim.Reference.run ~drop_detected:drop ~on_detect c ~faults
            ~vectors)
    in
    let candidates =
      [
        ( vname,
          fun ~on_detect ->
            Fault_sim.run_with ~engine ~drop_detected:drop ~on_detect c
              ~faults ~vectors );
        ( vname ^ "-parallel-2",
          fun ~on_detect ->
            Fault_sim.run_parallel_with ~engine ~domains:2 ~drop_detected:drop
              ~on_detect c ~faults ~vectors );
        ( vname ^ "-parallel-3",
          fun ~on_detect ->
            Fault_sim.run_parallel_with ~engine ~domains:3 ~drop_detected:drop
              ~on_detect c ~faults ~vectors );
      ]
    in
    let rec compare_candidates = function
      | [] -> None
      | (name, run) :: rest -> (
          let r, ev = collect run in
          let mismatch = ref None in
          Array.iteri
            (fun i d ->
              if !mismatch = None && d <> ref_r.Fault_sim.first_detection.(i)
              then mismatch := Some i)
            r.Fault_sim.first_detection;
          match !mismatch with
          | Some i ->
              failf
                "reference vs %s (drop=%b): fault %s first-detected at %s vs \
                 %s"
                name drop
                (Dl_fault.Stuck_at.to_string c faults.(i))
                (match ref_r.Fault_sim.first_detection.(i) with
                | Some d -> string_of_int d
                | None -> "never")
                (match r.Fault_sim.first_detection.(i) with
                | Some d -> string_of_int d
                | None -> "never")
          | None ->
              if ev <> ref_ev then
                failf
                  "reference vs %s (drop=%b): on_detect event streams differ \
                   (%d vs %d events)"
                  name drop (List.length ref_ev) (List.length ev)
              else if
                pin_evals
                && r.Fault_sim.gate_evaluations
                   <> ref_r.Fault_sim.gate_evaluations
              then
                failf "reference vs %s (drop=%b): gate_evaluations %d vs %d"
                  name drop ref_r.Fault_sim.gate_evaluations
                  r.Fault_sim.gate_evaluations
              else compare_candidates rest)
    in
    compare_candidates candidates
  in
  match check_mode true with Some _ as f -> f | None -> check_mode false

(* --- event-propagate: selective trace vs cone propagation vs Sim2 ------- *)

let event_propagate (case : Testcase.t) =
  let c = case.Testcase.circuit in
  let n_nodes = Circuit.node_count c in
  if Array.length case.vectors = 0 then None
  else begin
    let es = Event_sim.create c in
    let prev = ref (Event_sim.node_values es) in
    let prev_inputs = ref (Array.make (Circuit.input_count c) false) in
    let rec step vi =
      if vi >= Array.length case.vectors then None
      else begin
        let v = case.vectors.(vi) in
        let seeds =
          Array.to_list
            (Array.mapi
               (fun i id ->
                 if v.(i) <> !prev_inputs.(i) then
                   Some (id, Ternary.of_bool v.(i))
                 else None)
               c.inputs)
          |> List.filter_map Fun.id
        in
        let diff = Propagate.run c !prev seeds in
        ignore (Event_sim.set_inputs es v);
        let full = Sim2.run_single c v in
        let rec node id =
          if id >= n_nodes then begin
            prev := Event_sim.node_values es;
            prev_inputs := Array.copy v;
            step (vi + 1)
          end
          else if Event_sim.value es id <> full.(id) then
            failf "Event_sim vs Sim2: vector %d node %s: %b vs %b" vi
              (Circuit.name c id) (Event_sim.value es id) full.(id)
          else
            let expected =
              match Hashtbl.find_opt diff id with
              | Some t -> Ternary.to_bool t
              | None -> Some !prev.(id)
            in
            match expected with
            | None ->
                failf "Propagate produced X at node %s on binary inputs \
                       (vector %d)"
                  (Circuit.name c id) vi
            | Some b ->
                if b <> full.(id) then
                  failf "Propagate vs Sim2: vector %d node %s: %b vs %b" vi
                    (Circuit.name c id) b full.(id)
                else node (id + 1)
        in
        node 0
      end
    in
    step 0
  end

(* --- sim3-binary: ternary simulator restricted to binary inputs --------- *)

let sim3_binary (case : Testcase.t) =
  let c = case.Testcase.circuit in
  let n_nodes = Circuit.node_count c in
  let rec step vi =
    if vi >= Array.length case.vectors then None
    else begin
      let v = case.vectors.(vi) in
      let tern = Sim3.run c (Array.map Ternary.of_bool v) in
      let bin = Sim2.run_single c v in
      let rec node id =
        if id >= n_nodes then step (vi + 1)
        else if not (Ternary.equal tern.(id) (Ternary.of_bool bin.(id))) then
          failf "Sim3 vs Sim2 on binary inputs: vector %d node %s: %c vs %b"
            vi (Circuit.name c id)
            (Ternary.to_char tern.(id))
            bin.(id)
        else node (id + 1)
      in
      node 0
    end
  in
  step 0

(* --- experiment-cache: cached vs uncached pipeline ---------------------- *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> remove_tree (Filename.concat path e))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let experiment_cache ~seed =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlcheck-cache-%d-%d" (Unix.getpid ()) (abs seed))
  in
  Fun.protect
    ~finally:(fun () -> try remove_tree dir with Sys_error _ -> ())
    (fun () ->
      let circuit = Benchmarks.c432s_small () in
      let cfg cache_dir =
        Experiment.config ~seed:(7 + (abs seed land 7)) ~max_random_vectors:64
          ~domains:1 ?cache_dir circuit
      in
      let plain = Experiment.run (cfg None) in
      let cold = Experiment.run (cfg (Some dir)) in
      let warm = Experiment.run (cfg (Some dir)) in
      let outcomes (e : Experiment.t) want =
        List.for_all
          (fun (r : Stage.report) -> r.outcome = want)
          e.stage_reports
      in
      if plain.summary <> cold.summary then
        failf "uncached vs cold cached Experiment.run: summaries differ"
      else if cold.summary <> warm.summary then
        failf "cold vs warm cached Experiment.run: summaries differ"
      else if plain.fit <> cold.fit || cold.fit <> warm.fit then
        failf "cached vs uncached Experiment.run: fitted (R, θmax) differ"
      else if
        plain.t_curve <> cold.t_curve
        || cold.t_curve <> warm.t_curve
        || cold.theta_curve <> warm.theta_curve
        || cold.gamma_curve <> warm.gamma_curve
      then failf "cached vs uncached Experiment.run: coverage curves differ"
      else if not (outcomes cold Stage.Miss) then
        failf "cold cached run: expected every stage to Miss"
      else if not (outcomes warm Stage.Hit) then
        failf "warm cached run: expected every stage to Hit"
      else None)

(* --- serve-loopback: served answer vs direct Experiment.run ------------- *)

(* Differential oracle for the serving layer: a job answered over the
   Unix-socket loopback must be bit-identical to a direct in-process
   [Experiment.run] of the same config, and the immediate resubmission of
   the same job must coalesce (no second execution). *)
let serve_loopback ~seed =
  let socket =
    Dl_serve.Transport.Unix_socket
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "dlcheck-serve-%d-%d.sock" (Unix.getpid ()) (abs seed)))
  in
  let cfg =
    Dl_serve.Server.config ~workers:1 ~domains_per_worker:1 ~listen:socket ()
  in
  let server = Dl_serve.Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Dl_serve.Server.stop server)
    (fun () ->
      let job_seed = 7 + (abs seed land 7) in
      let spec =
        Dl_serve.Protocol.job_spec ~seed:job_seed ~max_random_vectors:64
          (Dl_serve.Protocol.Builtin "c432s_small")
      in
      Dl_serve.Client.with_client socket @@ fun client ->
      let first = Dl_serve.Client.submit client spec in
      let direct =
        Experiment.run
          (Experiment.config ~seed:job_seed ~max_random_vectors:64 ~domains:1
             (Benchmarks.c432s_small ()))
      in
      let expect =
        Dl_serve.Protocol.payload_of_experiment
          ~key:(Experiment.request_key direct.cfg) direct
      in
      match first with
      | Dl_serve.Protocol.Result served ->
          (* stage hit/miss bookkeeping may legitimately differ between a
             cacheless served run and the direct run; everything the paper
             derives from the experiment must not *)
          let strip (p : Dl_serve.Protocol.result_payload) =
            { p with stage_hits = 0; stage_misses = 0 }
          in
          if strip served.payload <> strip expect then
            failf "served c432s_small answer differs from direct Experiment.run"
          else (
            match Dl_serve.Client.submit client spec with
            | Dl_serve.Protocol.Result again ->
                if not again.coalesced then
                  failf "identical resubmission was executed, not coalesced"
                else if strip again.payload <> strip expect then
                  failf "coalesced answer differs from the first"
                else None
            | other ->
                failf "resubmission: unexpected reply %s"
                  (match other with
                  | Dl_serve.Protocol.Rejected _ -> "Rejected"
                  | Dl_serve.Protocol.Expired -> "Expired"
                  | Dl_serve.Protocol.Server_error m -> "Server_error: " ^ m
                  | _ -> "Pong/Stats"))
      | Dl_serve.Protocol.Server_error m -> failf "server error: %s" m
      | _ -> failf "submit: unexpected reply kind")

(* Differential oracle for the cluster: a job relayed by the coordinator
   through a TCP worker fleet must be bit-identical to a direct
   in-process Experiment.run, and resubmitting the same job directly to
   the worker that did NOT execute it must be served entirely from the
   distributed store (fetch-through; no stage recomputed). *)
let serve_cluster ~seed =
  let module P = Dl_serve.Protocol in
  let module T = Dl_serve.Transport in
  let module W = Dl_cluster.Worker in
  let tmp tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dlcheck-cluster-%d-%d-%s" (Unix.getpid ()) (abs seed)
           tag)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let dir1 = tmp "w1" and dir2 = tmp "w2" in
  let loopback = T.Tcp ("127.0.0.1", 0) in
  let w1 =
    W.start ~workers:1 ~domains_per_worker:1 ~cache_dir:dir1 ~listen:loopback
      ()
  in
  let w2 =
    W.start ~workers:1 ~domains_per_worker:1 ~cache_dir:dir2 ~listen:loopback
      ()
  in
  let fleet = [ W.bound w1; W.bound w2 ] in
  List.iter (fun w -> W.set_peers w fleet) [ w1; w2 ];
  let coord =
    Dl_cluster.Coord.start
      (Dl_cluster.Coord.config ~probe_period_s:0.2 ~listen:loopback
         ~workers:fleet ())
  in
  Fun.protect
    ~finally:(fun () ->
      Dl_cluster.Coord.stop coord;
      List.iter W.stop [ w1; w2 ];
      List.iter (fun d -> try remove_tree d with Sys_error _ -> ())
        [ dir1; dir2 ])
    (fun () ->
      let job_seed = 7 + (abs seed land 7) in
      let spec =
        P.job_spec ~seed:job_seed ~max_random_vectors:64
          (P.Builtin "c432s_small")
      in
      let direct =
        Experiment.run
          (Experiment.config ~seed:job_seed ~max_random_vectors:64 ~domains:1
             (Benchmarks.c432s_small ()))
      in
      let expect =
        Dl_serve.Protocol.payload_of_experiment
          ~key:(Experiment.request_key direct.cfg) direct
      in
      let strip (p : P.result_payload) =
        { p with P.stage_hits = 0; stage_misses = 0 }
      in
      let submit_to endpoint =
        Dl_serve.Client.with_client endpoint (fun c ->
            Dl_serve.Client.submit c spec)
      in
      match submit_to (Dl_cluster.Coord.bound coord) with
      | P.Result served when strip served.P.payload <> strip expect ->
          failf "cluster answer differs from direct Experiment.run"
      | P.Result _ -> (
          (* The coordinator hashed the job to one worker; the other one
             has none of its artifacts locally and must assemble the same
             answer purely from peer fetches. *)
          let resubmits =
            List.map
              (fun w ->
                match submit_to (W.bound w) with
                | P.Result served -> Ok served
                | P.Server_error m -> Error ("server error: " ^ m)
                | P.Rejected _ -> Error "rejected"
                | _ -> Error "unexpected reply kind")
              [ w1; w2 ]
          in
          match
            List.find_map (function Error e -> Some e | Ok _ -> None)
              resubmits
          with
          | Some e -> failf "direct resubmission: %s" e
          | None -> (
              let served =
                List.filter_map
                  (function Ok (s : P.served) -> Some s | Error _ -> None)
                  resubmits
              in
              match
                List.filter (fun (s : P.served) -> not s.P.coalesced) served
              with
              | [] ->
                  failf
                    "no worker executed the resubmission (both claim to \
                     have run the original)"
              | fresh ->
                  List.fold_left
                    (fun acc (s : P.served) ->
                      if acc <> None then acc
                      else if strip s.P.payload <> strip expect then
                        failf "cross-worker answer differs from direct run"
                      else if s.P.payload.P.stage_misses <> 0 then
                        failf
                          "cross-worker resubmission recomputed %d stage(s) \
                           instead of hitting the distributed store"
                          s.P.payload.P.stage_misses
                      else acc)
                    None fresh))
      | P.Server_error m -> failf "cluster submit: server error: %s" m
      | _ -> failf "cluster submit: unexpected reply kind")

(* --- registry ----------------------------------------------------------- *)

let all =
  [
    { name = "sim2-flat";
      doc = "Sim2.run vs flat-kernel run_flat, every node word, tail blocks";
      kind = Case sim2_flat };
    { name = "fault-sim";
      doc =
        "PPSFP kernel vs reference vs parallel (incl. pool wider than the \
         universe), both drop modes, detection event streams";
      kind = Case fault_sim_agreement };
    { name = "ppsfp-event";
      doc =
        "event-driven incremental PPSFP vs reference: detections, event \
         streams and gate_evaluations, both drop modes, serial + parallel";
      kind = Case (ppsfp_variant Fault_sim.Event) };
    { name = "ppsfp-pruned";
      doc =
        "FFR-inference PPSFP vs reference: detections and event streams, \
         both drop modes, serial + parallel";
      kind = Case (ppsfp_variant Fault_sim.Pruned) };
    { name = "ppsfp-wide";
      doc =
        "256-bit-block PPSFP vs reference: detections and event streams, \
         both drop modes, serial + parallel";
      kind = Case (ppsfp_variant Fault_sim.Wide) };
    { name = "event-propagate";
      doc = "Event_sim selective trace vs Propagate cone vs Sim2, per vector";
      kind = Case event_propagate };
    { name = "sim3-binary";
      doc = "Sim3 equals Sim2 on fully-binary inputs, every node";
      kind = Case sim3_binary };
    { name = "coverage-monotone";
      doc = "T(k) monotone in k; prefix simulation reproduces the record";
      kind = Case Metamorphic.coverage_monotone };
    { name = "collapse-classes";
      doc = "members of a collapsing class share their first detection";
      kind = Case Metamorphic.collapse_agreement };
    { name = "eq11-wb";
      doc = "eq.11 reduces to Williams-Brown at R=1, thetamax=1";
      kind = Sweep (fun ~seed -> Metamorphic.wb_reduction ~seed ()) };
    { name = "eq9-theta";
      doc = "eq.9 envelope: bounds, monotonicity, endpoints";
      kind = Sweep (fun ~seed -> Metamorphic.theta_envelope ~seed ()) };
    { name = "eq11-dl";
      doc = "eq.11 DL(T) nonincreasing; endpoints 1-Y and residual";
      kind = Sweep (fun ~seed -> Metamorphic.dl_monotone ~seed ()) };
    { name = "yield-weights";
      doc = "weighted yield vs Poisson model; scale_to_yield; w/p roundtrip";
      kind = Sweep (fun ~seed -> Metamorphic.yield_consistency ~seed ()) };
    { name = "required-coverage";
      doc = "required-coverage inversions round-trip (eq.1 and eq.11)";
      kind =
        Sweep (fun ~seed -> Metamorphic.required_coverage_roundtrip ~seed ())
    };
    { name = "experiment-cache";
      doc = "cached vs uncached Experiment.run identical; warm run all-hit";
      kind = Sweep experiment_cache };
    { name = "serve-loopback";
      doc =
        "served answer bit-identical to direct Experiment.run; identical \
         resubmission coalesces";
      kind = Sweep serve_loopback };
    { name = "serve-cluster";
      doc =
        "coordinator + TCP worker fleet bit-identical to direct \
         Experiment.run; cross-worker resubmission served from the \
         distributed store";
      kind = Sweep serve_cluster };
  ]

let find name = List.find_opt (fun o -> o.name = name) all
let names () = List.map (fun o -> o.name) all
