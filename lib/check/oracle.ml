(* The oracle registry: every engine pair (or higher-level invariant) the
   harness knows how to cross-check.  Case checks run once per generated
   {!Testcase}; sweep checks are self-contained (numeric sweeps, or the
   cached-pipeline differential) and run once per harness invocation. *)

open Dl_netlist
module Sim2 = Dl_logic.Sim2
module Sim3 = Dl_logic.Sim3
module Ternary = Dl_logic.Ternary
module Event_sim = Dl_logic.Event_sim
module Propagate = Dl_logic.Propagate
module Fault_sim = Dl_fault.Fault_sim
module Experiment = Dl_core.Experiment
module Stage = Dl_store.Stage

type kind =
  | Case of (Testcase.t -> string option)
  | Sweep of (seed:int -> string option)

type t = { name : string; doc : string; kind : kind }

let failf fmt = Printf.ksprintf (fun s -> Some s) fmt

(* --- sim2-flat: reference word simulator vs flat CSR kernel ------------- *)

let sim2_flat (case : Testcase.t) =
  let c = case.Testcase.circuit in
  let n = Array.length case.vectors in
  if n = 0 then None
  else begin
    let k = Kernel.of_circuit c in
    let buf = Kernel.create_words k in
    let n_blocks = (n + 63) / 64 in
    let rec block b =
      if b >= n_blocks then None
      else begin
        let base = b * 64 in
        let count = min 64 (n - base) in
        let words =
          Sim2.words_of_patterns c (Array.sub case.vectors base count)
        in
        let reference = Sim2.run c words in
        Sim2.load_patterns k buf case.vectors ~base ~count;
        Sim2.run_flat k buf;
        let mask =
          if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
        in
        let rec node id =
          if id >= Circuit.node_count c then block (b + 1)
          else
            let r = Int64.logand reference.(id) mask in
            let f = Int64.logand buf.{id} mask in
            if r <> f then
              failf
                "Sim2.run vs run_flat: node %s block %d (vectors %d..%d): \
                 %Lx vs %Lx"
                (Circuit.name c id) b base
                (base + count - 1)
                r f
            else node (id + 1)
        in
        node 0
      end
    in
    block 0
  end

(* --- fault-sim: kernel vs reference vs parallel, both drop modes -------- *)

let fault_sim_agreement (case : Testcase.t) =
  let { Testcase.circuit = c; vectors; faults; _ } = case in
  let run_engine f =
    let events = ref [] in
    let on_detect ~fault_index ~vector_index =
      events := (fault_index, vector_index) :: !events
    in
    let r = f ~on_detect in
    (r, List.rev !events)
  in
  let engines drop =
    [
      ( "kernel",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.run ~drop_detected:drop ~on_detect c ~faults ~vectors)
      );
      ( "reference",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.Reference.run ~drop_detected:drop ~on_detect c ~faults
                ~vectors) );
      ( "parallel-2",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.run_parallel ~domains:2 ~drop_detected:drop ~on_detect
                c ~faults ~vectors) );
      ( "reference-parallel-3",
        fun () ->
          run_engine (fun ~on_detect ->
              Fault_sim.Reference.run_parallel ~domains:3 ~drop_detected:drop
                ~on_detect c ~faults ~vectors) );
    ]
  in
  let check_mode drop =
    match engines drop with
    | [] -> None
    | (base_name, base_run) :: rest ->
        let base_r, base_ev = base_run () in
        let rec compare_engines = function
          | [] -> None
          | (name, run) :: rest -> (
              let r, ev = run () in
              let mismatch =
                Array.to_list
                  (Array.mapi
                     (fun i d ->
                       if d <> base_r.Fault_sim.first_detection.(i) then Some i
                       else None)
                     r.Fault_sim.first_detection)
                |> List.find_opt Option.is_some |> Option.join
              in
              match mismatch with
              | Some i ->
                  failf
                    "%s vs %s (drop=%b): fault %s first-detected at %s vs %s"
                    base_name name drop
                    (Dl_fault.Stuck_at.to_string c faults.(i))
                    (match base_r.Fault_sim.first_detection.(i) with
                    | Some d -> string_of_int d
                    | None -> "never")
                    (match r.Fault_sim.first_detection.(i) with
                    | Some d -> string_of_int d
                    | None -> "never")
              | None ->
                  if r.Fault_sim.gate_evaluations
                     <> base_r.Fault_sim.gate_evaluations
                  then
                    failf "%s vs %s (drop=%b): gate_evaluations %d vs %d"
                      base_name name drop base_r.Fault_sim.gate_evaluations
                      r.Fault_sim.gate_evaluations
                  else if ev <> base_ev then
                    failf
                      "%s vs %s (drop=%b): on_detect event streams differ \
                       (%d vs %d events)"
                      base_name name drop (List.length base_ev)
                      (List.length ev)
                  else compare_engines rest)
        in
        compare_engines rest
  in
  (* A pool wider than the fault universe (clamped at spawn time): run
     a small fault subset against a deliberately oversized request. *)
  let check_wide_pool () =
    if Array.length faults = 0 then None
    else begin
      let sub = Array.sub faults 0 (min 3 (Array.length faults)) in
      let serial = Fault_sim.run ~drop_detected:false c ~faults:sub ~vectors in
      let wide =
        Fault_sim.run_parallel
          ~domains:(Array.length sub + 5)
          ~drop_detected:false c ~faults:sub ~vectors
      in
      if wide.Fault_sim.first_detection <> serial.Fault_sim.first_detection
      then
        failf
          "run_parallel with pool wider than the %d-fault subset disagrees \
           with run"
          (Array.length sub)
      else None
    end
  in
  match check_mode true with
  | Some _ as f -> f
  | None -> (
      match check_mode false with
      | Some _ as f -> f
      | None -> check_wide_pool ())

(* --- ppsfp-{event,pruned,wide}: PR 7 engine variants vs Reference ------- *)

(* Pin one engine variant bit-identical to [Fault_sim.Reference]: first
   detections and [on_detect] event streams, both drop modes, serial and
   parallel (2 and 3 domains).  [Event] additionally pins
   [gate_evaluations]: its scheduling decisions must match the reference
   exactly, not just its results.  The inference engines ([Pruned],
   [Wide]) are exempt — not evaluating gates is their entire point. *)
let ppsfp_variant engine (case : Testcase.t) =
  let { Testcase.circuit = c; vectors; faults; _ } = case in
  let vname = Fault_sim.engine_to_string engine in
  let pin_evals = engine = Fault_sim.Event || engine = Fault_sim.Flat in
  let collect f =
    let events = ref [] in
    let on_detect ~fault_index ~vector_index =
      events := (fault_index, vector_index) :: !events
    in
    let r = f ~on_detect in
    (r, List.rev !events)
  in
  let check_mode drop =
    let ref_r, ref_ev =
      collect (fun ~on_detect ->
          Fault_sim.Reference.run ~drop_detected:drop ~on_detect c ~faults
            ~vectors)
    in
    let candidates =
      [
        ( vname,
          fun ~on_detect ->
            Fault_sim.run_with ~engine ~drop_detected:drop ~on_detect c
              ~faults ~vectors );
        ( vname ^ "-parallel-2",
          fun ~on_detect ->
            Fault_sim.run_parallel_with ~engine ~domains:2 ~drop_detected:drop
              ~on_detect c ~faults ~vectors );
        ( vname ^ "-parallel-3",
          fun ~on_detect ->
            Fault_sim.run_parallel_with ~engine ~domains:3 ~drop_detected:drop
              ~on_detect c ~faults ~vectors );
      ]
    in
    let rec compare_candidates = function
      | [] -> None
      | (name, run) :: rest -> (
          let r, ev = collect run in
          let mismatch = ref None in
          Array.iteri
            (fun i d ->
              if !mismatch = None && d <> ref_r.Fault_sim.first_detection.(i)
              then mismatch := Some i)
            r.Fault_sim.first_detection;
          match !mismatch with
          | Some i ->
              failf
                "reference vs %s (drop=%b): fault %s first-detected at %s vs \
                 %s"
                name drop
                (Dl_fault.Stuck_at.to_string c faults.(i))
                (match ref_r.Fault_sim.first_detection.(i) with
                | Some d -> string_of_int d
                | None -> "never")
                (match r.Fault_sim.first_detection.(i) with
                | Some d -> string_of_int d
                | None -> "never")
          | None ->
              if ev <> ref_ev then
                failf
                  "reference vs %s (drop=%b): on_detect event streams differ \
                   (%d vs %d events)"
                  name drop (List.length ref_ev) (List.length ev)
              else if
                pin_evals
                && r.Fault_sim.gate_evaluations
                   <> ref_r.Fault_sim.gate_evaluations
              then
                failf "reference vs %s (drop=%b): gate_evaluations %d vs %d"
                  name drop ref_r.Fault_sim.gate_evaluations
                  r.Fault_sim.gate_evaluations
              else compare_candidates rest)
    in
    compare_candidates candidates
  in
  match check_mode true with Some _ as f -> f | None -> check_mode false

(* --- event-propagate: selective trace vs cone propagation vs Sim2 ------- *)

let event_propagate (case : Testcase.t) =
  let c = case.Testcase.circuit in
  let n_nodes = Circuit.node_count c in
  if Array.length case.vectors = 0 then None
  else begin
    let es = Event_sim.create c in
    let prev = ref (Event_sim.node_values es) in
    let prev_inputs = ref (Array.make (Circuit.input_count c) false) in
    let rec step vi =
      if vi >= Array.length case.vectors then None
      else begin
        let v = case.vectors.(vi) in
        let seeds =
          Array.to_list
            (Array.mapi
               (fun i id ->
                 if v.(i) <> !prev_inputs.(i) then
                   Some (id, Ternary.of_bool v.(i))
                 else None)
               c.inputs)
          |> List.filter_map Fun.id
        in
        let diff = Propagate.run c !prev seeds in
        ignore (Event_sim.set_inputs es v);
        let full = Sim2.run_single c v in
        let rec node id =
          if id >= n_nodes then begin
            prev := Event_sim.node_values es;
            prev_inputs := Array.copy v;
            step (vi + 1)
          end
          else if Event_sim.value es id <> full.(id) then
            failf "Event_sim vs Sim2: vector %d node %s: %b vs %b" vi
              (Circuit.name c id) (Event_sim.value es id) full.(id)
          else
            let expected =
              match Hashtbl.find_opt diff id with
              | Some t -> Ternary.to_bool t
              | None -> Some !prev.(id)
            in
            match expected with
            | None ->
                failf "Propagate produced X at node %s on binary inputs \
                       (vector %d)"
                  (Circuit.name c id) vi
            | Some b ->
                if b <> full.(id) then
                  failf "Propagate vs Sim2: vector %d node %s: %b vs %b" vi
                    (Circuit.name c id) b full.(id)
                else node (id + 1)
        in
        node 0
      end
    in
    step 0
  end

(* --- sim3-binary: ternary simulator restricted to binary inputs --------- *)

let sim3_binary (case : Testcase.t) =
  let c = case.Testcase.circuit in
  let n_nodes = Circuit.node_count c in
  let rec step vi =
    if vi >= Array.length case.vectors then None
    else begin
      let v = case.vectors.(vi) in
      let tern = Sim3.run c (Array.map Ternary.of_bool v) in
      let bin = Sim2.run_single c v in
      let rec node id =
        if id >= n_nodes then step (vi + 1)
        else if not (Ternary.equal tern.(id) (Ternary.of_bool bin.(id))) then
          failf "Sim3 vs Sim2 on binary inputs: vector %d node %s: %c vs %b"
            vi (Circuit.name c id)
            (Ternary.to_char tern.(id))
            bin.(id)
        else node (id + 1)
      in
      node 0
    end
  in
  step 0

(* --- experiment-cache: cached vs uncached pipeline ---------------------- *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> remove_tree (Filename.concat path e))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let experiment_cache ~seed =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlcheck-cache-%d-%d" (Unix.getpid ()) (abs seed))
  in
  Fun.protect
    ~finally:(fun () -> try remove_tree dir with Sys_error _ -> ())
    (fun () ->
      let circuit = Benchmarks.c432s_small () in
      let cfg cache_dir =
        Experiment.config ~seed:(7 + (abs seed land 7)) ~max_random_vectors:64
          ~domains:1 ?cache_dir circuit
      in
      let plain = Experiment.run (cfg None) in
      let cold = Experiment.run (cfg (Some dir)) in
      let warm = Experiment.run (cfg (Some dir)) in
      let outcomes (e : Experiment.t) want =
        List.for_all
          (fun (r : Stage.report) -> r.outcome = want)
          e.stage_reports
      in
      if plain.summary <> cold.summary then
        failf "uncached vs cold cached Experiment.run: summaries differ"
      else if cold.summary <> warm.summary then
        failf "cold vs warm cached Experiment.run: summaries differ"
      else if plain.fit <> cold.fit || cold.fit <> warm.fit then
        failf "cached vs uncached Experiment.run: fitted (R, θmax) differ"
      else if
        plain.t_curve <> cold.t_curve
        || cold.t_curve <> warm.t_curve
        || cold.theta_curve <> warm.theta_curve
        || cold.gamma_curve <> warm.gamma_curve
      then failf "cached vs uncached Experiment.run: coverage curves differ"
      else if not (outcomes cold Stage.Miss) then
        failf "cold cached run: expected every stage to Miss"
      else if not (outcomes warm Stage.Hit) then
        failf "warm cached run: expected every stage to Hit"
      else None)

(* --- serve-loopback: served answer vs direct Experiment.run ------------- *)

(* Differential oracle for the serving layer: a job answered over the
   Unix-socket loopback must be bit-identical to a direct in-process
   [Experiment.run] of the same config, and the immediate resubmission of
   the same job must coalesce (no second execution). *)
let serve_loopback ~seed =
  let socket =
    Dl_serve.Transport.Unix_socket
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "dlcheck-serve-%d-%d.sock" (Unix.getpid ()) (abs seed)))
  in
  let cfg =
    Dl_serve.Server.config ~workers:1 ~domains_per_worker:1 ~listen:socket ()
  in
  let server = Dl_serve.Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Dl_serve.Server.stop server)
    (fun () ->
      let job_seed = 7 + (abs seed land 7) in
      let spec =
        Dl_serve.Protocol.job_spec ~seed:job_seed ~max_random_vectors:64
          (Dl_serve.Protocol.Builtin "c432s_small")
      in
      Dl_serve.Client.with_client socket @@ fun client ->
      let first = Dl_serve.Client.submit client spec in
      let direct =
        Experiment.run
          (Experiment.config ~seed:job_seed ~max_random_vectors:64 ~domains:1
             (Benchmarks.c432s_small ()))
      in
      let expect =
        Dl_serve.Protocol.payload_of_experiment
          ~key:(Experiment.request_key direct.cfg) direct
      in
      match first with
      | Dl_serve.Protocol.Result served ->
          (* stage hit/miss bookkeeping may legitimately differ between a
             cacheless served run and the direct run; everything the paper
             derives from the experiment must not *)
          let strip (p : Dl_serve.Protocol.result_payload) =
            { p with stage_hits = 0; stage_misses = 0 }
          in
          if strip served.payload <> strip expect then
            failf "served c432s_small answer differs from direct Experiment.run"
          else (
            match Dl_serve.Client.submit client spec with
            | Dl_serve.Protocol.Result again ->
                if not again.coalesced then
                  failf "identical resubmission was executed, not coalesced"
                else if strip again.payload <> strip expect then
                  failf "coalesced answer differs from the first"
                else None
            | other ->
                failf "resubmission: unexpected reply %s"
                  (match other with
                  | Dl_serve.Protocol.Rejected _ -> "Rejected"
                  | Dl_serve.Protocol.Expired -> "Expired"
                  | Dl_serve.Protocol.Server_error m -> "Server_error: " ^ m
                  | _ -> "Pong/Stats"))
      | Dl_serve.Protocol.Server_error m -> failf "server error: %s" m
      | _ -> failf "submit: unexpected reply kind")

(* Differential oracle for the cluster: a job relayed by the coordinator
   through a TCP worker fleet must be bit-identical to a direct
   in-process Experiment.run, and resubmitting the same job directly to
   the worker that did NOT execute it must be served entirely from the
   distributed store (fetch-through; no stage recomputed). *)
let serve_cluster ~seed =
  let module P = Dl_serve.Protocol in
  let module T = Dl_serve.Transport in
  let module W = Dl_cluster.Worker in
  let tmp tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dlcheck-cluster-%d-%d-%s" (Unix.getpid ()) (abs seed)
           tag)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let dir1 = tmp "w1" and dir2 = tmp "w2" in
  let loopback = T.Tcp ("127.0.0.1", 0) in
  let w1 =
    W.start ~workers:1 ~domains_per_worker:1 ~cache_dir:dir1 ~listen:loopback
      ()
  in
  let w2 =
    W.start ~workers:1 ~domains_per_worker:1 ~cache_dir:dir2 ~listen:loopback
      ()
  in
  let fleet = [ W.bound w1; W.bound w2 ] in
  List.iter (fun w -> W.set_peers w fleet) [ w1; w2 ];
  let coord =
    Dl_cluster.Coord.start
      (Dl_cluster.Coord.config ~probe_period_s:0.2 ~listen:loopback
         ~workers:fleet ())
  in
  Fun.protect
    ~finally:(fun () ->
      Dl_cluster.Coord.stop coord;
      List.iter W.stop [ w1; w2 ];
      List.iter (fun d -> try remove_tree d with Sys_error _ -> ())
        [ dir1; dir2 ])
    (fun () ->
      let job_seed = 7 + (abs seed land 7) in
      let spec =
        P.job_spec ~seed:job_seed ~max_random_vectors:64
          (P.Builtin "c432s_small")
      in
      let direct =
        Experiment.run
          (Experiment.config ~seed:job_seed ~max_random_vectors:64 ~domains:1
             (Benchmarks.c432s_small ()))
      in
      let expect =
        Dl_serve.Protocol.payload_of_experiment
          ~key:(Experiment.request_key direct.cfg) direct
      in
      let strip (p : P.result_payload) =
        { p with P.stage_hits = 0; stage_misses = 0 }
      in
      let submit_to endpoint =
        Dl_serve.Client.with_client endpoint (fun c ->
            Dl_serve.Client.submit c spec)
      in
      match submit_to (Dl_cluster.Coord.bound coord) with
      | P.Result served when strip served.P.payload <> strip expect ->
          failf "cluster answer differs from direct Experiment.run"
      | P.Result _ -> (
          (* The coordinator hashed the job to one worker; the other one
             has none of its artifacts locally and must assemble the same
             answer purely from peer fetches. *)
          let resubmits =
            List.map
              (fun w ->
                match submit_to (W.bound w) with
                | P.Result served -> Ok served
                | P.Server_error m -> Error ("server error: " ^ m)
                | P.Rejected _ -> Error "rejected"
                | _ -> Error "unexpected reply kind")
              [ w1; w2 ]
          in
          match
            List.find_map (function Error e -> Some e | Ok _ -> None)
              resubmits
          with
          | Some e -> failf "direct resubmission: %s" e
          | None -> (
              let served =
                List.filter_map
                  (function Ok (s : P.served) -> Some s | Error _ -> None)
                  resubmits
              in
              match
                List.filter (fun (s : P.served) -> not s.P.coalesced) served
              with
              | [] ->
                  failf
                    "no worker executed the resubmission (both claim to \
                     have run the original)"
              | fresh ->
                  List.fold_left
                    (fun acc (s : P.served) ->
                      if acc <> None then acc
                      else if strip s.P.payload <> strip expect then
                        failf "cross-worker answer differs from direct run"
                      else if s.P.payload.P.stage_misses <> 0 then
                        failf
                          "cross-worker resubmission recomputed %d stage(s) \
                           instead of hitting the distributed store"
                          s.P.payload.P.stage_misses
                      else acc)
                    None fresh))
      | P.Server_error m -> failf "cluster submit: server error: %s" m
      | _ -> failf "cluster submit: unexpected reply kind")

(* --- mc-poisson-limit: Wafer_mc at infinite alphas vs closed form ------- *)

module Seeds = Dl_util.Seeds
module Rng = Dl_util.Rng
module Weighted = Dl_core.Weighted
module Clustered = Dl_core.Clustered
module Wafer_mc = Dl_core.Wafer_mc
module Bootstrap = Dl_core.Bootstrap

(* A synthetic weighted fault universe with known coverage labels: [n]
   faults, weights scaled so the Poisson yield is exactly [target_yield],
   first detections uniform over the vector budget with a fixed
   never-detected fraction.  Returns the scaled weights, the firsts and
   the [(k, theta(k))] grid the MC bands are evaluated on. *)
let synthetic_universe rng ~n ~n_vectors ~target_yield ~points =
  let raw = Array.init n (fun _ -> Rng.float_in rng 0.2 1.0) in
  let weights, _scale = Weighted.scale_to_yield ~weights:raw ~target_yield in
  let firsts =
    Array.init n (fun _ ->
        if Rng.bernoulli rng 0.15 then None else Some (Rng.int rng n_vectors))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let theta_at k =
    let detected = ref 0.0 in
    Array.iteri
      (fun j first ->
        match first with
        | Some v when v < k -> detected := !detected +. weights.(j)
        | _ -> ())
      firsts;
    !detected /. total
  in
  let grid =
    Array.init points (fun i ->
        let k = (i + 1) * n_vectors / points in
        (k, theta_at k))
  in
  (weights, firsts, grid)

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  let m = mean a in
  let s = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
  sqrt (s /. float_of_int (max 1 (Array.length a - 1)))

(* Standard error of the pooled DL estimate from the per-wafer spread —
   valid for clustered runs too, where dies within a wafer are correlated
   and the plain binomial error underestimates. *)
let band_tolerance (b : Wafer_mc.band) =
  let wafers = Array.length b.wafer_dls in
  if wafers < 2 then 0.05
  else (5.0 *. stddev b.wafer_dls /. sqrt (float_of_int wafers)) +. 1e-4

let mc_poisson_limit ~seed =
  let target_yield = 0.75 in
  let n_vectors = 512 in
  let seeds = Seeds.scope (Seeds.create (9000 + abs seed)) "mc-poisson" in
  let rng = Seeds.stream seeds "universe" in
  let weights, firsts, grid =
    synthetic_universe rng ~n:300 ~n_vectors ~target_yield ~points:6
  in
  let m =
    Wafer_mc.simulate
      ~seeds:(Seeds.scope seeds "sim")
      ~dies:40_000 ~weights ~firsts ~points:grid ()
  in
  let y = Wafer_mc.observed_yield m in
  if abs_float (y -. target_yield) > 0.011 then
    failf "mc-poisson-limit: observed yield %.4f vs Poisson %.4f" y
      target_yield
  else
    Array.fold_left
      (fun acc (b : Wafer_mc.band) ->
        if acc <> None then acc
        else
          let closed =
            Weighted.defect_level ~yield:target_yield ~theta:b.coverage
          in
          let tol = band_tolerance b in
          if abs_float (b.dl_point -. closed) > tol then
            failf
              "mc-poisson-limit: k=%d theta=%.4f: MC DL %.5f vs closed form \
               %.5f (tol %.5f)"
              b.k b.coverage b.dl_point closed tol
          else if not (b.dl_q05 <= b.dl_q50 && b.dl_q50 <= b.dl_q95) then
            failf "mc-poisson-limit: k=%d: quantiles not ordered" b.k
          else acc)
      None m.bands

(* --- mc-clustered-consistency: single-level MC vs negative binomial ----- *)

let mc_clustered_consistency ~seed =
  let target_yield = 0.75 in
  let n_vectors = 512 in
  let seeds = Seeds.scope (Seeds.create (9100 + abs seed)) "mc-clustered" in
  let rng = Seeds.stream seeds "universe" in
  let weights, firsts, grid =
    synthetic_universe rng ~n:300 ~n_vectors ~target_yield ~points:4
  in
  let lambda = Array.fold_left ( +. ) 0.0 weights in
  let rec alphas = function
    | [] -> None
    | alpha :: rest -> (
        (* Single clustering level: wafer severities gamma(alpha)/alpha,
           lots Poisson — the per-die marginal is the negative binomial
           with mean [lambda] and clustering [alpha]. *)
        let m =
          Wafer_mc.simulate ~alpha_wafer:alpha
            ~seeds:(Seeds.scope seeds (Printf.sprintf "sim-a%g" alpha))
            ~dies:40_000 ~weights ~firsts ~points:grid ()
        in
        let yield_nb = (1.0 +. (lambda /. alpha)) ** -.alpha in
        let y = Wafer_mc.observed_yield m in
        let y_tol =
          (* wafer-correlated pass/fail: use the per-wafer spread of the
             defective fraction via the widest band's sample count *)
          5.0 *. sqrt (yield_nb *. (1.0 -. yield_nb) /. float_of_int m.wafers)
        in
        if abs_float (y -. yield_nb) > y_tol then
          failf
            "mc-clustered-consistency: alpha=%g observed yield %.4f vs NB \
             %.4f (tol %.4f)"
            alpha y yield_nb y_tol
        else
          let err =
            Array.fold_left
              (fun acc (b : Wafer_mc.band) ->
                if acc <> None then acc
                else
                  let closed =
                    Clustered.defect_level ~yield:yield_nb ~alpha
                      ~coverage:b.coverage
                  in
                  let tol = band_tolerance b in
                  if abs_float (b.dl_point -. closed) > tol then
                    failf
                      "mc-clustered-consistency: alpha=%g k=%d theta=%.4f: \
                       MC DL %.5f vs clustered closed form %.5f (tol %.5f)"
                      alpha b.k b.coverage b.dl_point closed tol
                  else acc)
              None m.bands
          in
          if err <> None then err else alphas rest)
  in
  alphas [ 0.5; 2.0; 10.0 ]

(* --- bootstrap-coverage: CI coverage on synthetic eq. 9 truth ----------- *)

(* Draw fault populations whose expected coverage curves follow eq. 9
   exactly — T(k) = k/n uniform stuck firsts, realistic firsts by inverting
   theta(T) = theta_max (1 - (1-T)^R) — then check that the 90% bootstrap
   intervals cover the truth in most trials.  With 12 trials at nominal
   0.9 coverage, P[fewer than 7 hits] < 1e-4 even allowing for small-sample
   undercoverage, so the bound is robust yet discriminating. *)
let bootstrap_coverage ~seed =
  let r_true = 1.5 and tmax_true = 0.9 in
  let n_vectors = 1024 and n_faults = 300 in
  let trials = 12 and replicates = 60 in
  let seeds = Seeds.scope (Seeds.create (9200 + abs seed)) "bootstrap-cov" in
  let run_trial i =
    let rng = Seeds.stream seeds (Printf.sprintf "trial-%d" i) in
    let t_firsts =
      Array.init n_faults (fun _ -> Some (Rng.int rng n_vectors))
    in
    let theta_firsts =
      Array.init n_faults (fun _ ->
          let u = Rng.float rng 1.0 in
          if u >= tmax_true then None
          else
            let t = 1.0 -. ((1.0 -. (u /. tmax_true)) ** (1.0 /. r_true)) in
            Some
              (min (n_vectors - 1)
                 (int_of_float (t *. float_of_int n_vectors))))
    in
    let theta_weights = Array.make n_faults 1.0 in
    let b =
      Bootstrap.run ~fit_points:40
        ~seeds:(Seeds.scope seeds (Printf.sprintf "boot-%d" i))
        ~replicates ~yield:0.75 ~t_firsts ~theta_firsts ~theta_weights
        ~n_vectors ()
    in
    (Bootstrap.contains b.r r_true, Bootstrap.contains b.theta_max tmax_true)
  in
  let r_hits = ref 0 and tmax_hits = ref 0 in
  for i = 0 to trials - 1 do
    let r_in, tmax_in = run_trial i in
    if r_in then incr r_hits;
    if tmax_in then incr tmax_hits
  done;
  if !r_hits < 7 then
    failf "bootstrap-coverage: R=%.2f covered in only %d/%d trials" r_true
      !r_hits trials
  else if !tmax_hits < 7 then
    failf "bootstrap-coverage: thetamax=%.2f covered in only %d/%d trials"
      tmax_true !tmax_hits trials
  else None

(* --- ndet-1detect: multi-detect at quota 1 vs the dropping engines ------ *)

module Dl_n = Dl_core.Dl_n
module Ndet_profile = Dl_ndet.Profile

(* The drop-invariance lemma made checkable: at [drop_after:1] the chunked
   multi-detect driver must be bit-identical to [drop_detected:true] on
   every engine — same firsts, and the n = 1 coverage curve equal (as a
   value) to the one the single-detection flow builds. *)
let ndet_one_detect (case : Testcase.t) =
  let { Testcase.circuit = c; vectors; faults; _ } = case in
  if Array.length vectors = 0 || Array.length faults = 0 then None
  else
    let rec engines = function
      | [] -> None
      | engine :: rest ->
          let single =
            Fault_sim.run_with ~engine ~drop_detected:true c ~faults ~vectors
          in
          let nd = Fault_sim.run_ndet ~engine ~drop_after:1 c ~faults ~vectors in
          let firsts = Fault_sim.ndet_first_detection nd in
          let rec fault i =
            if i >= Array.length faults then
              if
                Ndet_profile.coverage nd ~n:1
                <> Dl_fault.Coverage.make single.first_detection
              then
                failf "ndet-1detect [%s]: n=1 coverage curve differs"
                  (Fault_sim.engine_to_string engine)
              else engines rest
            else if firsts.(i) <> single.first_detection.(i) then
              failf
                "ndet-1detect [%s]: fault %d first detection %s vs %s"
                (Fault_sim.engine_to_string engine)
                i
                (match firsts.(i) with
                 | None -> "never" | Some v -> string_of_int v)
                (match single.first_detection.(i) with
                 | None -> "never" | Some v -> string_of_int v)
            else if nd.counts.(i) <> (if firsts.(i) = None then 0 else 1) then
              failf "ndet-1detect [%s]: fault %d count %d inconsistent"
                (Fault_sim.engine_to_string engine)
                i nd.counts.(i)
            else fault (i + 1)
          in
          fault 0
    in
    engines Fault_sim.engines

(* --- ndet-monotone: count and coverage monotonicity across quotas ------- *)

(* Detection of one fault is independent of which other faults are still
   live, so a lower quota is a pure truncation of a higher one: counts at
   quota 2 must equal [min counts4 2], the first two detection indices must
   agree, indices must be strictly increasing in k, and the T_n curves
   pointwise non-increasing in n. *)
let ndet_monotone (case : Testcase.t) =
  let { Testcase.circuit = c; vectors; faults; _ } = case in
  let n_vectors = Array.length vectors in
  if n_vectors = 0 || Array.length faults = 0 then None
  else
    let nd2 = Fault_sim.run_ndet ~drop_after:2 c ~faults ~vectors in
    let nd4 = Fault_sim.run_ndet ~drop_after:4 c ~faults ~vectors in
    let rec fault i =
      if i >= Array.length faults then None
      else if nd2.counts.(i) <> min nd4.counts.(i) 2 then
        failf "ndet-monotone: fault %d counts %d@2 vs %d@4" i nd2.counts.(i)
          nd4.counts.(i)
      else
        let rec kth k prev =
          if k > 4 then fault (i + 1)
          else
            let at4 = (Fault_sim.ndet_kth_detection nd4 ~k).(i) in
            (if k <= 2 then
               let at2 = (Fault_sim.ndet_kth_detection nd2 ~k).(i) in
               if at2 <> at4 then
                 failf "ndet-monotone: fault %d k=%d index differs across \
                        quotas" i k
               else None
             else None)
            |> function
            | Some _ as err -> err
            | None -> (
                match (prev, at4) with
                | Some p, Some v when v <= p ->
                    failf
                      "ndet-monotone: fault %d detection indices not \
                       increasing (k=%d: %d after %d)"
                      i k v p
                | Some _, None | None, None -> kth (k + 1) prev
                | _, _ -> kth (k + 1) at4)
        in
        kth 1 None
    in
    match fault 0 with
    | Some _ as err -> err
    | None ->
        let curves =
          Array.map (fun n -> Ndet_profile.coverage nd4 ~n) [| 1; 2; 3; 4 |]
        in
        let ks = Dl_fault.Coverage.log_spaced ~max:n_vectors ~points:12 in
        Array.fold_left
          (fun acc k ->
            if acc <> None then acc
            else
              let rec level j =
                if j >= Array.length curves - 1 then None
                else
                  let hi = Dl_fault.Coverage.at curves.(j) k
                  and lo = Dl_fault.Coverage.at curves.(j + 1) k in
                  if lo > hi +. 1e-12 then
                    failf
                      "ndet-monotone: T_%d(%d) = %.6f exceeds T_%d(%d) = %.6f"
                      (j + 2) k lo (j + 1) k hi
                  else level (j + 1)
              in
              level 0)
          None ks

(* --- ndet-dl-monotone: DL(n) table non-increasing at the shared target -- *)

(* [Dl_n.analyze] is curve-agnostic in its theta argument, so a synthetic
   weighted stand-in built from the profile's own firsts exercises the
   whole table construction cheaply: dl_at_target must be non-increasing
   and k_at_target non-decreasing in n, every row reaching t_star. *)
let ndet_dl_monotone (case : Testcase.t) =
  let { Testcase.circuit = c; vectors; faults; seed } = case in
  let n_vectors = Array.length vectors in
  if n_vectors = 0 || Array.length faults = 0 then None
  else
    let nd = Fault_sim.run_ndet ~drop_after:4 c ~faults ~vectors in
    let rng = Rng.create (0x9DE7 + abs seed) in
    let weights =
      Array.init (Array.length faults) (fun _ -> Rng.float_in rng 0.1 1.0)
    in
    let theta_curve =
      Dl_fault.Coverage.make ~weights (Fault_sim.ndet_first_detection nd)
    in
    let table =
      Dl_n.analyze ~ns:[| 1; 2; 4 |] ~fit_points:24 ~profile:nd ~theta_curve
        ~yield:0.75 ~n_vectors ()
    in
    let rows = table.Dl_n.rows in
    let rec row j =
      if j >= Array.length rows then None
      else
        let r = rows.(j) in
        if r.Dl_n.final_t < table.Dl_n.t_star -. 1e-12 then
          failf "ndet-dl-monotone: row n=%d final T %.6f below t* %.6f"
            r.Dl_n.n r.Dl_n.final_t table.Dl_n.t_star
        else if
          j > 0 && r.Dl_n.dl_at_target > rows.(j - 1).Dl_n.dl_at_target +. 1e-12
        then
          failf
            "ndet-dl-monotone: DL@T* increased from %.6f (n=%d) to %.6f \
             (n=%d)"
            rows.(j - 1).Dl_n.dl_at_target
            rows.(j - 1).Dl_n.n r.Dl_n.dl_at_target r.Dl_n.n
        else if j > 0 && r.Dl_n.k_at_target < rows.(j - 1).Dl_n.k_at_target
        then
          failf
            "ndet-dl-monotone: k@T* decreased from %d (n=%d) to %d (n=%d)"
            rows.(j - 1).Dl_n.k_at_target
            rows.(j - 1).Dl_n.n r.Dl_n.k_at_target r.Dl_n.n
        else row (j + 1)
    in
    row 0

(* --- registry ----------------------------------------------------------- *)

let all =
  [
    { name = "sim2-flat";
      doc = "Sim2.run vs flat-kernel run_flat, every node word, tail blocks";
      kind = Case sim2_flat };
    { name = "fault-sim";
      doc =
        "PPSFP kernel vs reference vs parallel (incl. pool wider than the \
         universe), both drop modes, detection event streams";
      kind = Case fault_sim_agreement };
    { name = "ppsfp-event";
      doc =
        "event-driven incremental PPSFP vs reference: detections, event \
         streams and gate_evaluations, both drop modes, serial + parallel";
      kind = Case (ppsfp_variant Fault_sim.Event) };
    { name = "ppsfp-pruned";
      doc =
        "FFR-inference PPSFP vs reference: detections and event streams, \
         both drop modes, serial + parallel";
      kind = Case (ppsfp_variant Fault_sim.Pruned) };
    { name = "ppsfp-wide";
      doc =
        "256-bit-block PPSFP vs reference: detections and event streams, \
         both drop modes, serial + parallel";
      kind = Case (ppsfp_variant Fault_sim.Wide) };
    { name = "event-propagate";
      doc = "Event_sim selective trace vs Propagate cone vs Sim2, per vector";
      kind = Case event_propagate };
    { name = "sim3-binary";
      doc = "Sim3 equals Sim2 on fully-binary inputs, every node";
      kind = Case sim3_binary };
    { name = "coverage-monotone";
      doc = "T(k) monotone in k; prefix simulation reproduces the record";
      kind = Case Metamorphic.coverage_monotone };
    { name = "collapse-classes";
      doc = "members of a collapsing class share their first detection";
      kind = Case Metamorphic.collapse_agreement };
    { name = "eq11-wb";
      doc = "eq.11 reduces to Williams-Brown at R=1, thetamax=1";
      kind = Sweep (fun ~seed -> Metamorphic.wb_reduction ~seed ()) };
    { name = "eq9-theta";
      doc = "eq.9 envelope: bounds, monotonicity, endpoints";
      kind = Sweep (fun ~seed -> Metamorphic.theta_envelope ~seed ()) };
    { name = "eq11-dl";
      doc = "eq.11 DL(T) nonincreasing; endpoints 1-Y and residual";
      kind = Sweep (fun ~seed -> Metamorphic.dl_monotone ~seed ()) };
    { name = "yield-weights";
      doc = "weighted yield vs Poisson model; scale_to_yield; w/p roundtrip";
      kind = Sweep (fun ~seed -> Metamorphic.yield_consistency ~seed ()) };
    { name = "required-coverage";
      doc = "required-coverage inversions round-trip (eq.1 and eq.11)";
      kind =
        Sweep (fun ~seed -> Metamorphic.required_coverage_roundtrip ~seed ())
    };
    { name = "experiment-cache";
      doc = "cached vs uncached Experiment.run identical; warm run all-hit";
      kind = Sweep experiment_cache };
    { name = "serve-loopback";
      doc =
        "served answer bit-identical to direct Experiment.run; identical \
         resubmission coalesces";
      kind = Sweep serve_loopback };
    { name = "serve-cluster";
      doc =
        "coordinator + TCP worker fleet bit-identical to direct \
         Experiment.run; cross-worker resubmission served from the \
         distributed store";
      kind = Sweep serve_cluster };
    { name = "mc-poisson-limit";
      doc =
        "Wafer_mc at infinite alphas recovers the Poisson closed form \
         (eq. 3) within sampling error; quantiles ordered";
      kind = Sweep mc_poisson_limit };
    { name = "mc-clustered-consistency";
      doc =
        "single-level clustered Wafer_mc matches the negative-binomial \
         closed form for alpha in {0.5, 2, 10}";
      kind = Sweep mc_clustered_consistency };
    { name = "bootstrap-coverage";
      doc =
        "90% bootstrap CIs on (R, thetamax) cover synthetic eq. 9 truth \
         in >= 7/12 trials";
      kind = Sweep bootstrap_coverage };
    { name = "ndet-1detect";
      doc =
        "run_ndet at quota 1 bit-identical to drop_detected on every \
         engine; n=1 coverage curve equal to the single-detection one";
      kind = Case ndet_one_detect };
    { name = "ndet-monotone";
      doc =
        "quota-2 counts/indices a truncation of quota-4; per-fault \
         detection indices increasing; T_n pointwise non-increasing in n";
      kind = Case ndet_monotone };
    { name = "ndet-dl-monotone";
      doc =
        "Dl_n table on a synthetic weighted theta: DL@T* non-increasing \
         and k@T* non-decreasing in n, every row reaching t*";
      kind = Case ndet_dl_monotone };
  ]

let find name = List.find_opt (fun o -> o.name = name) all
let names () = List.map (fun o -> o.name) all
