(** Greedy counterexample minimization for failing {!Testcase}s.

    Reduction moves, cheapest first, to a fixpoint: chunked vector
    deletion, chunked fault deletion, then per-gate elimination through
    {!Dl_netlist.Transform.eliminate_node} + [prune_dead] (faults are
    remapped across the surgery; vectors survive because primary inputs
    are never removed).  Every accepted move strictly shrinks the case, so
    the process terminates; [max_checks] additionally bounds the total
    number of predicate evaluations (default 2000). *)

type stats = {
  checks : int;          (** Predicate evaluations spent. *)
  rounds : int;          (** Fixpoint rounds. *)
  gates_before : int;
  gates_after : int;
  vectors_before : int;
  vectors_after : int;
  faults_before : int;
  faults_after : int;
}

val pp_stats : Format.formatter -> stats -> unit

val minimize :
  ?max_checks:int ->
  fails:(Testcase.t -> string option) ->
  Testcase.t ->
  Testcase.t * stats
(** [minimize ~fails case] assumes [fails case <> None] and returns a
    (weakly) smaller case that still fails, with reduction statistics.
    [fails] is re-evaluated on every candidate — it must be
    deterministic. *)
