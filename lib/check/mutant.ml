(* A deliberately buggy PPSFP engine for the harness's mutation self-test.

   [simulate_fault] and [run] below are a copy of the fault-simulation eval
   loop ([Fault_sim.Reference], the engine the flat kernel is property-
   tested against), specialized to no-drop operation, with three marked
   single-line injection points.  [Pristine] compiles the copy back into a
   correct engine — the self-test uses it to prove that any counterexample
   found against a real mutation is caused by that mutation and not by
   drift in the copy. *)

open Dl_netlist
module Stuck_at = Dl_fault.Stuck_at
module Fault_sim = Dl_fault.Fault_sim

type mutation =
  | Pristine
      (* no mutation: must be indistinguishable from the real engines *)
  | Drop_fault_after_first_block
      (* fault dropping gone wrong: every fault is retired after the first
         64-vector block whether or not it was detected *)
  | Truncate_detection_word
      (* the per-block detection word loses its high half: detections by
         vectors 32..63 of a block are never observed *)

let all =
  [
    ("drop-after-first-block", Drop_fault_after_first_block);
    ("truncate-detection-word", Truncate_detection_word);
  ]

let to_string = function
  | Pristine -> "pristine"
  | Drop_fault_after_first_block -> "drop-after-first-block"
  | Truncate_detection_word -> "truncate-detection-word"

(* --- begin copied eval loop ------------------------------------------- *)

module Schedule = struct
  type t = {
    buckets : int list array;
    queued : bool array;
    mutable level : int;
    mutable remaining : int;
  }

  let create depth nodes =
    {
      buckets = Array.make (depth + 1) [];
      queued = Array.make nodes false;
      level = 0;
      remaining = 0;
    }

  let push t ~level id =
    if not t.queued.(id) then begin
      t.queued.(id) <- true;
      t.buckets.(level) <- id :: t.buckets.(level);
      if level < t.level then t.level <- level;
      t.remaining <- t.remaining + 1
    end

  let reset t = t.level <- 0

  let pop t =
    if t.remaining = 0 then None
    else begin
      while t.buckets.(t.level) = [] do
        t.level <- t.level + 1
      done;
      match t.buckets.(t.level) with
      | [] -> assert false
      | id :: rest ->
          t.buckets.(t.level) <- rest;
          t.queued.(id) <- false;
          t.remaining <- t.remaining - 1;
          Some id
    end
end

type scratch = {
  schedule : Schedule.t;
  faulty : int64 array;
  touched : bool array;
  mutable touched_list : int list;
}

let make_scratch (c : Circuit.t) =
  let n_nodes = Circuit.node_count c in
  {
    schedule = Schedule.create (Circuit.depth c) n_nodes;
    faulty = Array.make n_nodes 0L;
    touched = Array.make n_nodes false;
    touched_list = [];
  }

let simulate_fault (c : Circuit.t) st ~is_output ~good ~valid_mask
    (f : Stuck_at.t) =
  let touch id v =
    if not st.touched.(id) then begin
      st.touched.(id) <- true;
      st.touched_list <- id :: st.touched_list
    end;
    st.faulty.(id) <- v
  in
  let value_of id = if st.touched.(id) then st.faulty.(id) else good.(id) in
  let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
  let detect_word = ref 0L in
  let seeded =
    match f.site with
    | Stuck_at.Stem id ->
        let diff =
          Int64.logand (Int64.logxor good.(id) stuck_word) valid_mask
        in
        if diff = 0L then false
        else begin
          touch id stuck_word;
          if is_output.(id) then detect_word := diff;
          Array.iter
            (fun succ -> Schedule.push st.schedule ~level:c.levels.(succ) succ)
            c.fanouts.(id);
          true
        end
    | Stuck_at.Branch { gate; pin } ->
        let nd = c.nodes.(gate) in
        let ins = Array.map (fun src -> good.(src)) nd.fanin in
        ins.(pin) <- stuck_word;
        let v = Gate.eval_word nd.kind ins in
        let diff = Int64.logand (Int64.logxor good.(gate) v) valid_mask in
        if diff = 0L then false
        else begin
          touch gate v;
          if is_output.(gate) then detect_word := diff;
          Array.iter
            (fun succ -> Schedule.push st.schedule ~level:c.levels.(succ) succ)
            c.fanouts.(gate);
          true
        end
  in
  if seeded then begin
    let rec drain () =
      match Schedule.pop st.schedule with
      | None -> ()
      | Some id ->
          let nd = c.nodes.(id) in
          let ins = Array.map value_of nd.fanin in
          (match f.site with
          | Stuck_at.Branch { gate; pin } when gate = id ->
              ins.(pin) <- stuck_word
          | _ -> ());
          let v = Gate.eval_word nd.kind ins in
          let forced =
            match f.site with
            | Stuck_at.Stem sid when sid = id -> stuck_word
            | _ -> v
          in
          let diff = Int64.logand (Int64.logxor good.(id) forced) valid_mask in
          if diff <> 0L || st.touched.(id) then begin
            touch id forced;
            if diff <> 0L then begin
              if is_output.(id) then detect_word := Int64.logor !detect_word diff;
              Array.iter
                (fun succ ->
                  Schedule.push st.schedule ~level:c.levels.(succ) succ)
                c.fanouts.(id)
            end
          end;
          drain ()
    in
    drain ();
    List.iter (fun id -> st.touched.(id) <- false) st.touched_list;
    st.touched_list <- [];
    Schedule.reset st.schedule
  end;
  !detect_word

let run mutation (c : Circuit.t) ~faults ~vectors : Fault_sim.result =
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let st = make_scratch c in
  let is_output = Array.make (Circuit.node_count c) false in
  Array.iter (fun o -> is_output.(o) <- true) c.outputs;
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  for block = 0 to n_blocks - 1 do
    let base = block * 64 in
    let count = min 64 (n_vectors - base) in
    let patterns = Array.sub vectors base count in
    let words = Dl_logic.Sim2.words_of_patterns c patterns in
    let good = Dl_logic.Sim2.run c words in
    let valid_mask =
      if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
    in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let dw = simulate_fault c st ~is_output ~good ~valid_mask faults.(fi) in
        (* MUTATION: mask out the high half of the detection word. *)
        let dw =
          if mutation = Truncate_detection_word then
            Int64.logand dw 0xFFFFFFFFL
          else dw
        in
        (match first_detection.(fi) with
        | None -> (
            match Fault_sim.lowest_set_bit dw with
            | Some bit -> first_detection.(fi) <- Some (base + bit)
            | None -> ())
        | Some _ -> ());
        (* MUTATION: retire every fault after block 0, detected or not. *)
        if mutation = Drop_fault_after_first_block then live.(fi) <- false
      end
    done
  done;
  { Fault_sim.faults; first_detection; vectors_applied = n_vectors;
    gate_evaluations = 0; stats = Fault_sim.Stats.zero }

(* --- end copied eval loop --------------------------------------------- *)
