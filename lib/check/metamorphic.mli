(** Metamorphic properties of the defect-level models and of the fault
    simulation itself: relations the paper's equations impose between
    outputs of {e different} invocations, checkable without knowing any
    single output's expected value.

    Numeric sweeps ([~seed]-driven, one call checks a few thousand random
    parameter points) cover eqs. 1, 4-6, 9 and 11; case-level properties
    run against a generated {!Testcase}.  All return [None] on success or
    [Some message] pinpointing the first violated instance. *)

(** {2 Equation sweeps} *)

val wb_reduction : seed:int -> unit -> string option
(** eq. 11 at [(R = 1, θmax = 1)] equals Williams–Brown (eq. 1). *)

val theta_envelope : seed:int -> unit -> string option
(** eq. 9: [Θ(T) ∈ \[0, θmax\]], monotone nondecreasing, [Θ(0) = 0],
    [Θ(1) = θmax]. *)

val dl_monotone : seed:int -> unit -> string option
(** eq. 11: [DL(T)] nonincreasing, [DL(0) = 1 - Y],
    [DL(1)] = residual defect level. *)

val yield_consistency : seed:int -> unit -> string option
(** eq. 5 agrees with the Poisson yield model at [λ = Σw];
    [scale_to_yield] hits its target; weight/probability maps invert. *)

val required_coverage_roundtrip : seed:int -> unit -> string option
(** Solving for required coverage and substituting back reproduces the
    defect-level target (eq. 1 and eq. 11), and eq. 11 reports
    unreachable targets exactly when they lie below the residual. *)

(** {2 Case properties} *)

val coverage_monotone : Testcase.t -> string option
(** The coverage curve [T(k)] is monotone in [k], and simulating a prefix
    of the vector sequence reproduces the prefix of the detection
    record. *)

val collapse_agreement : Testcase.t -> string option
(** Every member of a stuck-at equivalence class has the same first
    detection as its representative — the soundness condition under which
    collapsed and uncollapsed ([--no-collapse]) runs agree. *)
